/// StreamEngine durability: checkpointing, recovery, and replay over the
/// sqp::dur archive. Split from engine.cc so the core delivery path stays
/// readable — this file owns everything behind EnableDurability.

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "arch/engine.h"
#include "common/strings.h"
#include "dur/checkpoint.h"
#include "exec/project.h"
#include "exec/select.h"

namespace sqp {

std::string RecoveryReport::ToString() const {
  if (!recovered) return "no archive found; starting fresh";
  std::string s = StrFormat(
      "replayed %llu tuples + %llu puncts in %.3fs",
      static_cast<unsigned long long>(replayed_tuples),
      static_cast<unsigned long long>(replayed_puncts), replay_seconds);
  if (checkpoint_loaded) {
    s += StrFormat(
        "; checkpoint #%llu at seq %llu restored %zu queries (%zu operators)",
        static_cast<unsigned long long>(checkpoint_id),
        static_cast<unsigned long long>(checkpoint_position), restored_queries,
        restored_operators);
  } else {
    s += "; no checkpoint (full replay)";
  }
  if (replay_from_zero_queries > 0) {
    s += StrFormat("; %zu queries replayed from seq 0",
                   replay_from_zero_queries);
  }
  if (torn_streams > 0) {
    s += StrFormat("; %zu stream tails torn (truncated at last intact record)",
                   torn_streams);
  }
  return s;
}

bool StreamEngine::CollectCheckpointOps(
    QueryHandle& q, std::vector<CheckpointableOperator*>* ops,
    std::string* why) const {
  // Operator state owned by worker threads cannot be read consistently
  // from the ingest thread mid-run; such queries fall back to full
  // archive replay.
  if (q.parallel_ != nullptr) {
    *why = "parallel execution";
    return false;
  }
  if (q.sharded()) {
    *why = "sharded plan";
    return false;
  }
  if (q.shed_gate_ != nullptr) {
    // The gate's RNG position is not captured, so replay would shed a
    // different subset than the original run.
    *why = "adaptive shedding gate";
    return false;
  }
  for (const QueryHandle::Tap& tap : q.taps_) {
    if (tap.entry != nullptr) {
      *why = "reorder/heartbeat front-end buffers are not checkpointable";
      return false;
    }
  }
  for (const auto& op : q.query_->plan().operators()) {
    if (auto* c = dynamic_cast<CheckpointableOperator*>(op.get())) {
      std::string op_why;
      if (!c->CanCheckpointState(&op_why)) {
        *why = op->name() + ": " + op_why;
        return false;
      }
      ops->push_back(c);
      continue;
    }
    // Known-stateless operators contribute nothing to a checkpoint.
    if (dynamic_cast<SelectOp*>(op.get()) != nullptr ||
        dynamic_cast<ProjectOp*>(op.get()) != nullptr) {
      continue;
    }
    *why = "operator '" + op->name() + "' holds state with no serializer";
    return false;
  }
  // The collector is outside the plan but holds the emitted rows — it
  // goes last so a restored query resumes with its past output intact.
  ops->push_back(q.sink_.get());
  return true;
}

Status StreamEngine::CheckpointLocked() {
  if (dur_ == nullptr) {
    return Status::InvalidArgument("durability is not enabled");
  }
  dur::Checkpoint ckpt;
  ckpt.id = ckpt_id_ + 1;
  ckpt.position = dur_->last_seq();
  ckpt.next_seq = dur_->next_seq();
  for (auto& q : queries_) {
    dur::QueryCheckpoint qc;
    qc.text = q->text_;
    std::vector<CheckpointableOperator*> ops;
    std::string why;
    if (CollectCheckpointOps(*q, &ops, &why)) {
      qc.included = true;
      qc.op_states.reserve(ops.size());
      for (const CheckpointableOperator* op : ops) {
        dur::BufWriter w;
        op->SaveState(w);
        qc.op_states.push_back(w.Take());
      }
    }
    ckpt.queries.push_back(std::move(qc));
  }
  // Archive first, checkpoint second: a checkpoint at position P must
  // never exist while records <= P (needed by non-included queries and
  // by the next recovery's suffix) are still only in the buffer.
  SQP_RETURN_NOT_OK(dur_->Flush());
  SQP_RETURN_NOT_OK(dur::WriteCheckpoint(dur_->root(), ckpt,
                                         dur_->options().keep_checkpoints,
                                         dur_->options().fsync));
  ckpt_id_ = ckpt.id;
  if (dur_ckpt_ctr_ != nullptr) dur_ckpt_ctr_->Inc();
  metrics_.GetGauge("sqp_dur_checkpoint_position")
      ->Set(static_cast<double>(ckpt.position));
  events_.Emit(obs::EventKind::kCheckpointWritten, "",
               StrFormat("checkpoint #%llu at seq %llu (%zu queries)",
                         static_cast<unsigned long long>(ckpt.id),
                         static_cast<unsigned long long>(ckpt.position),
                         ckpt.queries.size()));
  return Status::OK();
}

Status StreamEngine::CheckpointNow() {
  // Exclusive, not shared: ingest holds the lock shared, so this is the
  // only way a checkpoint taken from an arbitrary thread is guaranteed
  // not to read operator state mid-mutation. Checkpoints are rare; the
  // brief ingest stall is the price of a consistent snapshot.
  std::unique_lock<std::shared_mutex> reg(reg_mu_);
  return CheckpointLocked();
}

Status StreamEngine::RecoverLocked() {
  const auto t0 = std::chrono::steady_clock::now();
  recovery_ = RecoveryReport{};

  // 1) Latest checkpoint (optional, and skipped entirely in
  //    --ignore-checkpoint mode).
  dur::Checkpoint ckpt;
  bool have_ckpt = false;
  if (dur_->options().use_checkpoint) {
    auto loaded = dur::ReadLatestCheckpoint(dur_->root());
    if (loaded.ok()) {
      ckpt = std::move(*loaded);
      have_ckpt = true;
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
  }

  // 2) Restore operator state into matching queries. Matching is by CQL
  //    text, first-come-first-claimed, so duplicate query texts pair up
  //    positionally. A query that matches but was not included (or whose
  //    current plan shape refuses checkpointing) replays from seq 0.
  std::unordered_map<const QueryHandle*, uint64_t> start_seq;
  std::vector<bool> claimed(ckpt.queries.size(), false);
  for (auto& q : queries_) {
    bool restored = false;
    for (size_t i = 0; have_ckpt && i < ckpt.queries.size(); ++i) {
      const dur::QueryCheckpoint& qc = ckpt.queries[i];
      if (claimed[i] || qc.text != q->text_) continue;
      claimed[i] = true;
      if (!qc.included) break;
      std::vector<CheckpointableOperator*> ops;
      std::string why;
      if (!CollectCheckpointOps(*q, &ops, &why)) break;
      if (ops.size() != qc.op_states.size()) {
        return Status::Internal(StrFormat(
            "checkpoint #%llu holds %zu operator states but the plan for "
            "\"%s\" has %zu checkpointable operators",
            static_cast<unsigned long long>(ckpt.id), qc.op_states.size(),
            q->text_.c_str(), ops.size()));
      }
      for (size_t j = 0; j < ops.size(); ++j) {
        dur::BufReader r(qc.op_states[j]);
        SQP_RETURN_NOT_OK(ops[j]->RestoreState(r));
      }
      start_seq[q.get()] = ckpt.position;
      ++recovery_.restored_queries;
      recovery_.restored_operators += ops.size();
      restored = true;
      break;
    }
    if (!restored) ++recovery_.replay_from_zero_queries;
  }
  if (have_ckpt) {
    recovery_.checkpoint_loaded = true;
    recovery_.checkpoint_id = ckpt.id;
    recovery_.checkpoint_position = ckpt.position;
    events_.Emit(
        obs::EventKind::kCheckpointRestored, "",
        StrFormat("checkpoint #%llu at seq %llu restored %zu queries "
                  "(%zu operators)",
                  static_cast<unsigned long long>(ckpt.id),
                  static_cast<unsigned long long>(ckpt.position),
                  recovery_.restored_queries, recovery_.restored_operators));
  }
  events_.Emit(obs::EventKind::kReplayStart, "",
               "replaying archive suffix through " +
                   std::to_string(queries_.size()) + " queries");

  // 3) Replay the archive in original ingest order. The k-way merge by
  //    global seq reproduces the exact interleaving across streams, so
  //    watermarks and per-stream order land exactly as they did live.
  //    Records at or below every query's start position are dead weight
  //    (fully covered by restored checkpoints) — they are skimmed past
  //    without delivery and without counting as replayed.
  uint64_t min_start = 0;
  if (!queries_.empty()) {
    min_start = UINT64_MAX;
    for (auto& q : queries_) {
      auto it = start_seq.find(q.get());
      min_start = std::min(min_start,
                           it != start_seq.end() ? it->second : uint64_t{0});
    }
  }
  dur::ArchiveReader reader(dur_->root());
  SQP_RETURN_NOT_OK(reader.Open());
  dur::ArchivedRecord rec;
  while (true) {
    auto has = reader.Next(&rec);
    if (!has.ok()) return has.status();
    if (!*has) break;
    if (rec.seq <= min_start) continue;
    for (auto& q : queries_) {
      uint64_t from = 0;
      auto it = start_seq.find(q.get());
      if (it != start_seq.end()) from = it->second;
      if (rec.seq <= from) continue;
      for (const QueryHandle::Tap& tap : q->taps_) {
        if (tap.stream != rec.stream) continue;
        q->ingested_ = true;
        // Straight into DeliverDirect: replay must be lossless, so the
        // shed gate (whose query is never checkpointed) is bypassed.
        DeliverDirect(*q, tap, rec.element);
      }
    }
    if (rec.element.is_punctuation()) {
      ++recovery_.replayed_puncts;
    } else {
      ++recovery_.replayed_tuples;
    }
    if (dur_replay_ctr_ != nullptr) dur_replay_ctr_->Inc();
  }
  recovery_.torn_streams = reader.torn_streams();
  // A fresh directory yields neither checkpoint nor records; report it
  // as a clean start, not a zero-record recovery.
  recovery_.recovered = have_ckpt || reader.last_seq() > 0;
  if (!recovery_.recovered) recovery_.replay_from_zero_queries = 0;

  // 4) Resume the global sequence past everything the archive holds (a
  //    torn tail may sit below the checkpoint's counter — take the max).
  uint64_t resume = reader.last_seq() + 1;
  if (have_ckpt && ckpt.next_seq > resume) resume = ckpt.next_seq;
  dur_->set_next_seq(resume < 1 ? 1 : resume);
  ckpt_id_ = have_ckpt ? ckpt.id : 0;

  recovery_.replay_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  metrics_.GetGauge("sqp_dur_recovery_replayed")
      ->Set(static_cast<double>(recovery_.replayed_tuples +
                                recovery_.replayed_puncts));
  metrics_.GetGauge("sqp_dur_recovery_restored_queries")
      ->Set(static_cast<double>(recovery_.restored_queries));
  metrics_.GetGauge("sqp_dur_recovery_seconds")->Set(recovery_.replay_seconds);
  events_.Emit(obs::EventKind::kReplayFinish, "", recovery_.ToString());
  return Status::OK();
}

Status StreamEngine::EnableDurability(const std::string& dir,
                                      dur::DurabilityOptions options) {
  std::unique_lock<std::shared_mutex> reg(reg_mu_);
  if (finished_) {
    return Status::InvalidArgument("engine already finished");
  }
  if (dur_ != nullptr) {
    return Status::AlreadyExists("durability already enabled");
  }
  auto mgr = std::make_unique<dur::DurabilityManager>(dir, options, &metrics_);
  SQP_RETURN_NOT_OK(mgr->Open());
  dur_ = std::move(mgr);
  dur_ckpt_ctr_ = metrics_.GetCounter("sqp_dur_checkpoints_total");
  dur_replay_ctr_ = metrics_.GetCounter("sqp_dur_replayed_total");
  if (options.recover) {
    Status st = RecoverLocked();
    if (!st.ok()) {
      // Leave the engine durability-off rather than half-recovered; the
      // caller can retry with use_checkpoint=false to audit the archive.
      dur_.reset();
      recovery_ = RecoveryReport{};
      return st;
    }
  }
  // Queries that predate durability get their replay boundary here: the
  // archive content as of this point was already poured into them by
  // recovery (or deliberately skipped with recover=false), and anything
  // archived from now on reaches them live.
  for (auto& q : queries_) q->submit_seq_ = dur_->last_seq();
  return Status::OK();
}

Result<uint64_t> StreamEngine::ReplayInto(QueryHandle* handle) {
  std::unique_lock<std::shared_mutex> reg(reg_mu_);
  if (dur_ == nullptr) {
    return Status::InvalidArgument("durability is not enabled");
  }
  if (handle == nullptr) return Status::InvalidArgument("null handle");
  if (finished_) return Status::InvalidArgument("engine already finished");
  // Make everything appended so far visible to the reader.
  SQP_RETURN_NOT_OK(dur_->Flush());
  dur::ArchiveReader reader(dur_->root());
  SQP_RETURN_NOT_OK(reader.Open());
  // Bound the replay at the handle's registration point: every record
  // archived after Submit is (or will be) delivered live to this
  // handle, so pouring it again would duplicate results whenever ingest
  // races this call.
  const uint64_t bound = handle->submit_seq_;
  events_.Emit(obs::EventKind::kReplayStart, handle->metrics_label_,
               "replaying archive up to seq " + std::to_string(bound));
  dur::ArchivedRecord rec;
  uint64_t delivered = 0;
  while (true) {
    auto has = reader.Next(&rec);
    if (!has.ok()) return has.status();
    if (!*has) break;
    if (rec.seq > bound) break;  // Merged order is ascending.
    for (const QueryHandle::Tap& tap : handle->taps_) {
      if (tap.stream != rec.stream) continue;
      handle->ingested_ = true;
      DeliverDirect(*handle, tap, rec.element);
      ++delivered;
    }
    if (dur_replay_ctr_ != nullptr) dur_replay_ctr_->Inc();
  }
  events_.Emit(obs::EventKind::kReplayFinish, handle->metrics_label_,
               "replayed " + std::to_string(delivered) + " elements");
  return delivered;
}

}  // namespace sqp
