#include "arch/cql_decompose.h"

#include "cql/parser.h"

namespace sqp {

Result<CqlDecomposition> DecomposeCqlAggregate(const std::string& text,
                                               const cql::Catalog& catalog,
                                               size_t low_slots) {
  auto parsed = cql::Parse(text);
  if (!parsed.ok()) return parsed.status();
  auto analyzed = cql::Analyze(*parsed, catalog);
  if (!analyzed.ok()) return analyzed.status();
  const cql::AnalyzedQuery& aq = *analyzed;

  if (aq.num_streams != 1) {
    return Status::Unimplemented(
        "decomposition supports single-stream aggregate queries");
  }
  if (!aq.has_aggregates || !aq.has_group_by) {
    return Status::InvalidArgument(
        "decomposition requires GROUP BY with aggregates");
  }
  if (aq.tumbling_size <= 0) {
    return Status::InvalidArgument(
        "decomposition requires a shifting window (group by ts/K)");
  }
  if (aq.ast.having != nullptr) {
    return Status::Unimplemented(
        "HAVING must be applied over final values; evaluate it above the "
        "high level (e.g. on the DB sink)");
  }

  CqlDecomposition out;
  out.query = text;
  out.input_schema = aq.entries[0]->schema;
  out.config.key_cols = aq.group_cols;
  for (const cql::ResolvedAgg& a : aq.aggs) out.config.aggs.push_back(a.spec);
  out.config.window_size = aq.tumbling_size;
  out.config.low_slots = low_slots;

  // Push the WHERE clause below the partial aggregation.
  ExprRef filter;
  for (const ExprRef& c : aq.left_only) {
    filter = (filter == nullptr) ? c : And(filter, c);
  }
  out.config.prefilter = filter;

  // Verify the aggregates decompose before handing the config out.
  auto check = DecomposeAggregates(out.config.aggs,
                                   static_cast<int>(out.config.key_cols.size()));
  if (!check.ok()) return check.status();
  return out;
}

}  // namespace sqp
