#ifndef SQP_ARCH_DB_SINK_H_
#define SQP_ARCH_DB_SINK_H_

#include <memory>
#include <string>
#include <vector>

#include "agg/partial_agg.h"
#include "common/schema.h"
#include "exec/expr.h"
#include "exec/operator.h"

namespace sqp {

/// The DBMS at the top of the 3-level architecture (slides 14-15): a
/// stored, persistent relation fed by the high-level DSMS. Supports
/// one-time (transient) queries over the stored data — the "audit the
/// stream system's answers" role the tutorial assigns to the database.
class DbSink : public Operator {
 public:
  explicit DbSink(SchemaRef schema, std::string name = "db");

  void Push(const Element& e, int port = 0) override;
  size_t StateBytes() const override;

  const SchemaRef& schema() const { return schema_; }
  size_t size() const { return table_.size(); }
  const std::vector<TupleRef>& table() const { return table_; }

  /// One-time selection: all stored tuples satisfying `pred` (nullptr =
  /// all).
  std::vector<TupleRef> Scan(const ExprRef& pred) const;

  /// One-time grouped aggregation over the stored relation.
  std::vector<std::pair<Key, std::vector<Value>>> Aggregate(
      const std::vector<int>& key_cols, const std::vector<AggSpec>& aggs,
      const ExprRef& pred = nullptr) const;

 private:
  SchemaRef schema_;
  std::vector<TupleRef> table_;
  size_t bytes_ = 0;
};

}  // namespace sqp

#endif  // SQP_ARCH_DB_SINK_H_
