#ifndef SQP_ARCH_ENGINE_H_
#define SQP_ARCH_ENGINE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cql/planner.h"
#include "dur/checkpointable.h"
#include "dur/manager.h"
#include "exec/profiler.h"
#include "exec/reorder.h"
#include "exec/sharding.h"
#include "obs/event_log.h"
#include "obs/http_exporter.h"
#include "obs/monitor.h"
#include "obs/registry.h"
#include "sched/parallel_executor.h"
#include "shed/feedback_shedder.h"
#include "shed/load_shedder.h"

namespace sqp {

namespace server {
class QueryServer;
struct QueryServerOptions;
}  // namespace server

/// Options governing how the engine treats one registered stream.
struct StreamOptions {
  /// Tolerated disorder (ordering units); > 0 interposes a SlackReorderOp
  /// in front of every query reading the stream.
  int64_t reorder_slack = 0;
  /// Heartbeat period; > 0 injects watermarks every `period` units so
  /// windowed queries make progress on quiet streams.
  int64_t heartbeat_period = 0;
};

/// Tuning for one query moved onto the threaded executor
/// (StreamEngine::EnableParallel).
struct ParallelQueryOptions {
  /// Bound per stage queue, in elements (0 = unbounded).
  size_t queue_limit = 1024;
  /// Full-queue behavior: block the ingesting thread or shed the tuple.
  Backpressure backpressure = Backpressure::kBlock;
  /// Delivery granularity per stage (ParallelExecutor::Stage::max_batch):
  /// the worker hands queued elements to each operator in ElementBatch
  /// runs of at most this size. <= 1 delivers per element.
  size_t max_batch = 64;
};

/// Tuning for StreamEngine::EnableAdaptiveShedding.
struct AdaptiveShedOptions {
  /// PI controller tuning: the backlog to hold and the gains mapping
  /// normalized backlog error to drop probability.
  FeedbackShedder::Options controller;
  /// Seed of the random-drop gate in front of the query.
  uint64_t seed = 42;
  /// Where the controller reads the query's backlog each monitor tick.
  /// Default (empty): the query's ParallelExecutor queue occupancy.
  /// Serial queries have no executor queue and must supply a probe
  /// (e.g. an application-side buffer length).
  std::function<size_t()> backlog_probe;
};

/// Tuning for StreamEngine::Submit.
struct SubmitOptions {
  /// Streaming callback invoked per output tuple, wired atomically with
  /// registration: no element delivered after Submit returns can miss
  /// it. Runs on whichever thread drives the query's sink (the ingest
  /// thread for serial queries, a worker for parallel ones) — it must be
  /// thread-compatible with that and should not call back into the
  /// engine's registration API.
  std::function<void(const TupleRef&)> on_result;
  /// When false, the engine does not retain output rows in the handle's
  /// results() collector — the mode for standing server queries, whose
  /// output goes to a bounded per-session queue instead of an unbounded
  /// in-process vector.
  bool collect = true;
};

/// What EnableDurability's recovery pass did, for operators and tests.
struct RecoveryReport {
  /// True when EnableDurability found an existing archive or checkpoint
  /// and ran recovery (even if nothing needed replaying).
  bool recovered = false;
  bool checkpoint_loaded = false;
  uint64_t checkpoint_id = 0;
  /// Archive position the checkpoint captured; included queries replay
  /// only records past it.
  uint64_t checkpoint_position = 0;
  uint64_t replayed_tuples = 0;
  uint64_t replayed_puncts = 0;
  /// Queries whose operator state was restored from the checkpoint.
  size_t restored_queries = 0;
  size_t restored_operators = 0;
  /// Queries replayed from seq 0 (not in the checkpoint, or their plan
  /// is not checkpointable).
  size_t replay_from_zero_queries = 0;
  /// Streams whose archive tail was torn by the crash (truncated at the
  /// last intact record).
  size_t torn_streams = 0;
  double replay_seconds = 0.0;

  std::string ToString() const;
};

/// A handle to one standing (continuous, persistent) query.
class QueryHandle {
 public:
  /// Rows produced so far (the engine collects by default).
  ///
  /// For a parallel query (EnableParallel) the results are written by a
  /// worker thread: read them only after FinishAll(), which joins the
  /// workers.
  const std::vector<TupleRef>& results() const { return sink_->tuples(); }
  size_t result_count() const { return sink_->count(); }
  void ClearResults() { sink_->Clear(); }

  /// True once the query runs on its own worker thread(s).
  bool parallel() const { return parallel_ != nullptr; }
  /// Per-stage counters of the parallel executor (null when serial).
  const ParallelExecutor* parallel_executor() const { return parallel_.get(); }

  const Schema& output_schema() const { return query_->output_schema(); }
  const MemoryAnalysis& memory() const { return query_->memory(); }
  const std::string& text() const { return text_; }
  const std::string& plan_desc() const { return query_->plan_desc(); }
  /// Label this query's operators report under in the engine registry
  /// ("q0", "q1", ...). Empty when metrics were disabled at Submit and
  /// no collector has needed a label yet (the engine assigns one lazily
  /// for stage/shard/shed collectors).
  const std::string& metrics_label() const { return metrics_label_; }

  /// Optional streaming callback, invoked per output element in addition
  /// to collection.
  void OnResult(std::function<void(const TupleRef&)> fn) {
    callback_ = std::move(fn);
  }

  /// Measured end-to-end (ingest -> sink) latency histogram, in ns.
  /// Null when the engine's metrics were disabled at Submit.
  const obs::Histogram* latency_histogram() const { return latency_hist_; }

  /// True once EnableColumnar opted this query into vectorized delivery.
  bool columnar() const { return columnar_; }

  /// True once EnableSharding spliced at least one ShardedOp into this
  /// query's plan.
  bool sharded() const { return !sharded_ops_.empty(); }
  /// The spliced sharded operators (plan-owned), for stats inspection.
  const std::vector<ShardedOp*>& sharded_ops() const { return sharded_ops_; }
  /// Rewrite report of EnableSharding: one entry per stateful operator,
  /// spliced or skipped-with-reason.
  const std::vector<ShardRewrite>& shard_rewrites() const {
    return shard_rewrites_;
  }

  /// True once EnableAdaptiveShedding attached a drop gate to this query.
  bool adaptive_shedding() const { return shed_gate_ != nullptr; }
  /// Current drop probability of the adaptive gate (0 when detached).
  double shed_drop_rate() const {
    return shed_gate_ != nullptr ? shed_gate_->drop_rate() : 0.0;
  }
  /// Tuples the adaptive gate has shed so far.
  uint64_t shed_dropped() const {
    return shed_gate_ != nullptr ? shed_gate_->dropped() : 0;
  }

 private:
  friend class StreamEngine;

  std::string text_;
  std::string metrics_label_;
  std::unique_ptr<cql::CompiledQuery> query_;
  std::unique_ptr<CollectorSink> sink_;
  std::unique_ptr<Operator> tee_;  // Collector + callback fan-out.
  std::function<void(const TupleRef&)> callback_;
  // Per-input front-ends (reorder/heartbeat), parallel to query inputs.
  std::vector<std::unique_ptr<Operator>> front_;
  // The operator Ingest() pushes into, per (stream occurrence).
  struct Tap {
    std::string stream;
    Operator* entry;
    int port;
  };
  std::vector<Tap> taps_;
  // Set by EnableParallel: the threaded executor running this query's
  // plan, plus the adapter operator for the whole-query fallback.
  // Declared after query_/tee_ so it is destroyed (joined) first.
  std::unique_ptr<Operator> parallel_adapter_;
  std::unique_ptr<ParallelExecutor> parallel_;
  // Set by EnableSharding (plan-owned operators; handle only observes).
  std::vector<ShardedOp*> sharded_ops_;
  std::vector<ShardRewrite> shard_rewrites_;
  bool chain_mode_ = false;  // True: plan split op-per-stage.
  bool columnar_ = false;    // Set by EnableColumnar.
  bool ingested_ = false;    // Any element delivered yet?
  // Archive seq boundary at registration (set under the exclusive
  // registration lock by Submit, or by EnableDurability for queries that
  // predate it): records <= submit_seq_ were never delivered live to
  // this handle, records > it are. ReplayInto replays only up to here.
  uint64_t submit_seq_ = 0;
  // End-to-end latency probe: the engine arms `pending_ingest_ns_` with
  // a NowNs() timestamp on every Nth delivered tuple (arm-if-empty, so
  // a sample in flight is never overwritten); the tee claims it at the
  // first output and records the difference here. One atomic slot, no
  // allocation, works across the parallel queue boundary.
  obs::Histogram* latency_hist_ = nullptr;
  std::atomic<uint64_t> pending_ingest_ns_{0};
  uint64_t latency_countdown_ = 1;  // Ingest-thread only; fires at 0.
  // Adaptive shedding (EnableAdaptiveShedding): ingest-side drop gate,
  // its forwarding sink into the normal delivery path, the controller,
  // and the last backlog it observed (written on the monitor thread).
  std::unique_ptr<RandomDropOp> shed_gate_;
  std::unique_ptr<Operator> shed_fwd_;
  std::unique_ptr<FeedbackShedder> shedder_;
  std::atomic<size_t> shed_backlog_{0};
  // Profiler tap stamping every watermark entering this query (set at
  // Submit when metrics are on); owned by the engine's QueryProfiler.
  obs::QueryProfiler::SourceWatermark* profile_source_ = nullptr;
  // Shed-gate transition tracker for the event log; touched only by the
  // monitor tick listener thread.
  bool shed_active_ = false;
};

/// The engine: a registry of streams and standing queries with shared
/// ingest — the "DSMS" box of slide 14 as a library object.
///
///   StreamEngine engine;
///   engine.RegisterStream("packets", gen::PacketSchema());
///   auto q = engine.Submit("select ... from packets ...");
///   engine.Ingest("packets", tuple);   // Fans out to every reader.
///   engine.FinishAll();
///
/// Single-threaded by default; scheduling and shedding wrap around it
/// (sqp/sched, sqp/shed) rather than inside it. Individual queries can
/// opt into threaded execution with EnableParallel, which decouples
/// ingest from processing behind bounded queues.
class StreamEngine {
 public:
  StreamEngine();

  /// Registers a stream with optional domain metadata and per-stream
  /// disorder/heartbeat handling.
  Status RegisterStream(const std::string& name, SchemaRef schema,
                        std::vector<FieldDomain> domains = {},
                        StreamOptions options = {});

  /// Compiles and installs a standing query. The handle stays valid
  /// until Remove() or the engine's destruction.
  ///
  /// Registration is safe against a concurrent Ingest from another
  /// thread (the query-server front door does exactly that): Submit,
  /// Remove, and the Enable* calls take the registration lock
  /// exclusively, Ingest takes it shared. Ingest itself must still come
  /// from one thread at a time — operators are not concurrent.
  Result<QueryHandle*> Submit(const std::string& query_text) {
    return Submit(query_text, SubmitOptions{});
  }
  Result<QueryHandle*> Submit(const std::string& query_text,
                              SubmitOptions options);

  /// Tears one standing query down against a running engine: flushes it
  /// (unless the engine already finished), detaches its metrics
  /// collectors and shedding loop, and destroys the handle. Safe against
  /// concurrent Ingest. The caller must guarantee the query's on_result
  /// callback cannot block indefinitely once Remove is called (close the
  /// downstream queue first), or the final flush could wedge.
  Status Remove(QueryHandle* handle);

  /// Opt-in: moves `handle`'s physical plan onto a ParallelExecutor so
  /// it runs concurrently with ingest. Single-input queries whose plan
  /// is a linear operator chain get one worker thread *per operator*
  /// (true pipeline parallelism); other plans run whole on one dedicated
  /// worker. Either way, Ingest() then only enqueues — blocking or
  /// shedding per `options` when the query falls behind — and
  /// FinishAll() drains and joins the workers before results are read.
  ///
  /// Must be called after Submit and before the first Ingest touching
  /// the query; unsupported for queries with reorder/heartbeat
  /// front-ends (those run on the ingest thread and are not yet staged).
  Status EnableParallel(QueryHandle* handle, ParallelQueryOptions options = {});

  /// Opt-in vectorized execution: stages built by a later EnableParallel
  /// deliver queued tuple runs to column-capable operators (select,
  /// project, punctuated group-by) as ColumnBatches, evaluated by the
  /// compiled column-at-a-time kernels (sqp::vec) with rows rebuilt only
  /// at row-bound operators and sinks; a later EnableSharding folds
  /// converted runs inside each shard replica the same way. Output is
  /// bit-identical to the row path — operators whose expressions cannot
  /// vectorize simply keep their row delivery.
  ///
  /// Must be called after Submit, before the first Ingest, and before
  /// EnableSharding/EnableParallel (both capture the flag when they
  /// build their stages/replicas). A serial query without EnableParallel
  /// ingests element-at-a-time and gains nothing from the flag.
  Status EnableColumnar(QueryHandle* handle);

  /// Opt-in data parallelism: rewrites `handle`'s plan with
  /// ShardStatefulOps, replacing each shardable stateful operator
  /// (joins, keyed group-bys) with `options.shards` key-partitioned
  /// replicas behind a hash exchange and a punctuation-correct merge.
  /// Operators that refuse (count windows, global aggregates) are left
  /// serial — inspect handle->shard_rewrites() for the per-operator
  /// outcome. Per-shard counters (sqp_shard_*) join the engine registry.
  ///
  /// Must be called after Submit, before the first Ingest, and before
  /// EnableParallel (which then runs the sharded plan in whole-query
  /// mode — the shard/merge workers already provide the pipeline
  /// decoupling that op-per-stage mode would add).
  Status EnableSharding(QueryHandle* handle, ShardPlanOptions options = {});

  /// Pushes one tuple (or punctuation) into every query reading `stream`.
  Status Ingest(const std::string& stream, const TupleRef& tuple);
  Status IngestElement(const std::string& stream, const Element& e);

  /// Ends every stream: flushes all queries (closing windows/groups).
  void FinishAll();

  /// The engine-wide metrics registry. Every query submitted while
  /// metrics are enabled (the default) reports per-operator counters
  /// here, labeled q0, q1, ... in submission order; parallel queries
  /// additionally publish per-stage queue stats. Snapshot it any time —
  /// including while ingest/workers run — via Metrics().TakeSnapshot().
  obs::MetricsRegistry& Metrics() { return metrics_; }
  const obs::MetricsRegistry& Metrics() const { return metrics_; }

  /// Turns per-operator instrumentation on/off for queries submitted
  /// *after* the call. Off: operators stay unbound and pay only a
  /// branch per element.
  void SetMetricsEnabled(bool on) { metrics_enabled_ = on; }
  bool metrics_enabled() const { return metrics_enabled_; }

  /// The engine's structured event log: a bounded ring of timestamped
  /// lifecycle events (query submit/stop, checkpoints, replay, shed-gate
  /// transitions, shard backpressure stalls, durability flush errors).
  /// Exported at /events.json and tailed by `sqpsh \events`. Safe from
  /// any thread.
  obs::EventLog& Events() { return events_; }
  const obs::EventLog& Events() const { return events_; }

  /// Copies one query's profile (the EXPLAIN ANALYZE payload): per-
  /// operator rows in/out, selectivity, busy time, batch-size shape,
  /// queue wait, state bytes, and event-time watermark lag against the
  /// query's source watermark. Queries submitted while metrics were
  /// enabled are profiled; returns false for unknown or unprofiled
  /// labels. Safe from any thread while ingest runs.
  bool ProfileSnapshot(const std::string& label, obs::QueryProfile* out) const;
  bool ProfileSnapshot(const QueryHandle* handle,
                       obs::QueryProfile* out) const;
  /// Labels of the currently profiled queries.
  std::vector<std::string> ProfiledQueries() const;

  /// Samples every Nth ingested tuple's path through its plan(s) into
  /// the trace ring (0 = off). Takes effect for queries submitted after
  /// the call if metrics were disabled before it.
  void EnableTracing(uint64_t sample_every) {
    metrics_.EnableTracing(sample_every);
  }

  /// 1/N sampling period of the end-to-end latency probes (default 256,
  /// 0 disables). Takes effect at the next Ingest.
  void SetLatencySampleEvery(uint64_t n) { latency_sample_every_ = n; }
  uint64_t latency_sample_every() const { return latency_sample_every_; }

  /// Starts the engine's continuous monitor over Metrics() (idempotent;
  /// later calls return the existing monitor and ignore `options`).
  /// With options.period_ms <= 0 no sampler thread is spawned — drive
  /// observation manually with monitor()->TickOnce().
  obs::Monitor& StartMonitor(obs::MonitorOptions options = {});
  obs::Monitor* monitor() { return monitor_.get(); }
  const obs::Monitor* monitor() const { return monitor_.get(); }

  /// Starts the HTTP scrape endpoint (GET /metrics, /snapshot.json,
  /// /series.json) on `port` — 0 binds an ephemeral port. Starts the
  /// monitor (default options) if it is not already running, so
  /// /series.json has history. Returns the bound port.
  Result<int> ServeMetrics(int port);
  const obs::HttpExporter* http_exporter() const { return http_.get(); }

  /// Starts the multi-client continuous-query server (server::
  /// QueryServer) on `port` — 0 binds an ephemeral port. Clients POST
  /// CQL to /query, receive a session id, and stream results back via
  /// long-poll GET /session/<id>/results with cursor resume. Returns the
  /// bound port. Defined in src/server/engine_serve.cc (the server
  /// subsystem layers above the engine).
  Result<int> Serve(int port);
  Result<int> Serve(int port, const server::QueryServerOptions& options);
  server::QueryServer* query_server() { return server_.get(); }

  /// True once FinishAll() ran: streams are closed and new ingest is
  /// rejected.
  bool finished() const { return finished_; }

  /// Turns on the durable archive under `dir` (created if absent): every
  /// ingested element — tuples and punctuation — is appended to a
  /// per-stream segmented write-ahead archive before delivery, group-
  /// committed by a background flusher. If `dir` already holds an
  /// archive and options.recover is set (the default), recovery runs
  /// first: the latest checkpoint's operator state is restored into
  /// matching already-submitted queries (matched by CQL text) and the
  /// archive suffix is replayed through their plans in original ingest
  /// order, so Submit your queries *before* calling this. Defined in
  /// src/arch/engine_dur.cc.
  Status EnableDurability(const std::string& dir,
                          dur::DurabilityOptions options = {});
  bool durable() const { return dur_ != nullptr; }
  dur::DurabilityManager* durability() { return dur_.get(); }
  /// What the recovery pass of the last EnableDurability did.
  const RecoveryReport& recovery_report() const { return recovery_; }

  /// Flushes the archive and writes a checkpoint of every query's
  /// operator state now. Safe from any thread: takes the registration
  /// lock exclusively, so concurrent ingest is held off while live
  /// operator state is read.
  Status CheckpointNow();

  /// Replays the archived past into one freshly submitted query — the
  /// "--replay" mode: submit a fresh query over the archived past, pour
  /// the archive through it, then let live ingest take over. Replay
  /// stops at the handle's Submit-time archive position: anything
  /// archived after Submit is (or will be) delivered live, so elements
  /// that raced in between Submit and this call are never delivered
  /// twice. Returns the number of elements delivered. Takes the
  /// registration lock exclusively; the handle's on_result callback must
  /// not block.
  Result<uint64_t> ReplayInto(QueryHandle* handle);

  /// Closes the observation loop for one query: interposes a
  /// RandomDropOp gate between Ingest and the query, attaches a
  /// FeedbackShedder, and drives its Observe() from every monitor tick
  /// with the query's measured backlog — the gate's drop probability
  /// follows the controller. Starts the monitor (default options) if
  /// needed. Single-input queries only; serial queries must supply
  /// options.backlog_probe.
  Status EnableAdaptiveShedding(QueryHandle* handle,
                                AdaptiveShedOptions options = {});

  const cql::Catalog& catalog() const { return catalog_; }
  size_t num_queries() const { return queries_.size(); }
  const std::vector<std::unique_ptr<QueryHandle>>& queries() const {
    return queries_;
  }

  /// Aggregate state across all standing queries.
  size_t TotalStateBytes() const;

 private:
  /// The one delivery path from ingest into a query: arms the latency
  /// probe, then routes to the parallel executor, the reorder/heartbeat
  /// front-end, or the query itself. The adaptive-shedding gate sits in
  /// front of this.
  void DeliverDirect(QueryHandle& q, const QueryHandle::Tap& tap,
                     const Element& e);

  /// Checkpointing/recovery internals (src/arch/engine_dur.cc). All
  /// require reg_mu_ held (shared is enough for CheckpointLocked only
  /// when called on the ingest thread, where operators are quiescent;
  /// any other caller must hold it exclusively — CheckpointNow does.
  /// RecoverLocked runs under the exclusive lock of EnableDurability
  /// before any concurrent ingest exists).
  Status CheckpointLocked();
  Status RecoverLocked();
  /// Walks `q`'s plan; true when every operator either carries state
  /// serializers (collected into `ops`, sink last) or is known
  /// stateless. False (with `why`) excludes the query from checkpoints —
  /// recovery then replays its archive input from seq 0.
  bool CollectCheckpointOps(QueryHandle& q,
                            std::vector<CheckpointableOperator*>* ops,
                            std::string* why) const;

  /// The label this query's collectors/listeners register under —
  /// handle->metrics_label_ when metrics were on at Submit, otherwise a
  /// lazily assigned "qN" cached on the handle so teardown can find the
  /// same names. Caller holds reg_mu_.
  const std::string& LabelFor(QueryHandle* handle);

  /// Guards the query/stream registries against concurrent registration
  /// and delivery: Ingest takes it shared (one ingest thread may overlap
  /// a Submit/Remove from a server connection thread), all registration
  /// and teardown paths take it exclusive.
  mutable std::shared_mutex reg_mu_;

  cql::Catalog catalog_;
  std::map<std::string, StreamOptions> stream_options_;
  // Outlives queries_ (destroyed later), so operators can report to
  // their bound OpMetrics slots up to their last Flush. Collectors that
  // reference per-query executors are only invoked via TakeSnapshot,
  // never during destruction.
  obs::MetricsRegistry metrics_;
  // Like metrics_, both outlive queries_ (declared before, destroyed
  // after): operators hold OpProfile* slots into profiler_ entries and
  // write through them up to their final Flush, and teardown paths emit
  // events until the last handle dies.
  obs::EventLog events_;
  obs::QueryProfiler profiler_;
  std::map<std::string, obs::Counter*> ingest_counters_;
  bool metrics_enabled_ = true;
  std::vector<std::unique_ptr<QueryHandle>> queries_;
  // Monotonic label sequence: labels stay unique across Remove()s (a
  // vector-index label would be reissued after an erase and collide).
  uint64_t query_seq_ = 0;
  bool finished_ = false;
  // Declared after metrics_ and queries_: the manager (whose flusher
  // thread ticks registry counters) dies before either.
  std::unique_ptr<dur::DurabilityManager> dur_;
  RecoveryReport recovery_;
  uint64_t ckpt_id_ = 0;  // Last checkpoint id written or recovered.
  // One kFlushError event per sticky archive failure, not one per
  // rejected ingest (written on the ingest thread).
  bool flush_error_logged_ = false;
  obs::Counter* dur_ckpt_ctr_ = nullptr;
  obs::Counter* dur_replay_ctr_ = nullptr;
  uint64_t latency_sample_every_ = 256;
  // Declared after queries_ so teardown runs observation-first: the
  // exporter stops serving, then the monitor joins its sampler (whose
  // tick listeners read query state), and only then do queries die.
  std::unique_ptr<obs::Monitor> monitor_;
  std::unique_ptr<obs::HttpExporter> http_;
  // Declared last: destroyed first, so the query server stops its
  // listener and closes sessions (which reference query handles) before
  // anything above dies. shared_ptr: QueryServer is incomplete here.
  std::shared_ptr<server::QueryServer> server_;
};

}  // namespace sqp

#endif  // SQP_ARCH_ENGINE_H_
