#ifndef SQP_ARCH_ENGINE_H_
#define SQP_ARCH_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cql/planner.h"
#include "exec/reorder.h"

namespace sqp {

/// Options governing how the engine treats one registered stream.
struct StreamOptions {
  /// Tolerated disorder (ordering units); > 0 interposes a SlackReorderOp
  /// in front of every query reading the stream.
  int64_t reorder_slack = 0;
  /// Heartbeat period; > 0 injects watermarks every `period` units so
  /// windowed queries make progress on quiet streams.
  int64_t heartbeat_period = 0;
};

/// A handle to one standing (continuous, persistent) query.
class QueryHandle {
 public:
  /// Rows produced so far (the engine collects by default).
  const std::vector<TupleRef>& results() const { return sink_->tuples(); }
  size_t result_count() const { return sink_->count(); }
  void ClearResults() { sink_->Clear(); }

  const Schema& output_schema() const { return query_->output_schema(); }
  const MemoryAnalysis& memory() const { return query_->memory(); }
  const std::string& text() const { return text_; }
  const std::string& plan_desc() const { return query_->plan_desc(); }

  /// Optional streaming callback, invoked per output element in addition
  /// to collection.
  void OnResult(std::function<void(const TupleRef&)> fn) {
    callback_ = std::move(fn);
  }

 private:
  friend class StreamEngine;

  std::string text_;
  std::unique_ptr<cql::CompiledQuery> query_;
  std::unique_ptr<CollectorSink> sink_;
  std::unique_ptr<Operator> tee_;  // Collector + callback fan-out.
  std::function<void(const TupleRef&)> callback_;
  // Per-input front-ends (reorder/heartbeat), parallel to query inputs.
  std::vector<std::unique_ptr<Operator>> front_;
  // The operator Ingest() pushes into, per (stream occurrence).
  struct Tap {
    std::string stream;
    Operator* entry;
    int port;
  };
  std::vector<Tap> taps_;
};

/// The engine: a registry of streams and standing queries with shared
/// ingest — the "DSMS" box of slide 14 as a library object.
///
///   StreamEngine engine;
///   engine.RegisterStream("packets", gen::PacketSchema());
///   auto q = engine.Submit("select ... from packets ...");
///   engine.Ingest("packets", tuple);   // Fans out to every reader.
///   engine.FinishAll();
///
/// Single-threaded like the rest of the library; scheduling and shedding
/// wrap around it (sqp/sched, sqp/shed) rather than inside it.
class StreamEngine {
 public:
  StreamEngine() = default;

  /// Registers a stream with optional domain metadata and per-stream
  /// disorder/heartbeat handling.
  Status RegisterStream(const std::string& name, SchemaRef schema,
                        std::vector<FieldDomain> domains = {},
                        StreamOptions options = {});

  /// Compiles and installs a standing query. The handle stays valid for
  /// the engine's lifetime.
  Result<QueryHandle*> Submit(const std::string& query_text);

  /// Pushes one tuple (or punctuation) into every query reading `stream`.
  Status Ingest(const std::string& stream, const TupleRef& tuple);
  Status IngestElement(const std::string& stream, const Element& e);

  /// Ends every stream: flushes all queries (closing windows/groups).
  void FinishAll();

  const cql::Catalog& catalog() const { return catalog_; }
  size_t num_queries() const { return queries_.size(); }
  const std::vector<std::unique_ptr<QueryHandle>>& queries() const {
    return queries_;
  }

  /// Aggregate state across all standing queries.
  size_t TotalStateBytes() const;

 private:
  cql::Catalog catalog_;
  std::map<std::string, StreamOptions> stream_options_;
  std::vector<std::unique_ptr<QueryHandle>> queries_;
  bool finished_ = false;
};

}  // namespace sqp

#endif  // SQP_ARCH_ENGINE_H_
