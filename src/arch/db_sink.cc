#include "arch/db_sink.h"

#include <cassert>

namespace sqp {

DbSink::DbSink(SchemaRef schema, std::string name)
    : Operator(std::move(name)), schema_(std::move(schema)) {}

void DbSink::Push(const Element& e, int /*port*/) {
  CountIn(e);
  if (e.is_punctuation()) return;
  bytes_ += e.tuple()->MemoryBytes();
  table_.push_back(e.tuple());
}

size_t DbSink::StateBytes() const { return sizeof(*this) + bytes_; }

std::vector<TupleRef> DbSink::Scan(const ExprRef& pred) const {
  std::vector<TupleRef> out;
  for (const TupleRef& t : table_) {
    if (pred == nullptr || Truthy(pred->Eval(*t))) out.push_back(t);
  }
  return out;
}

std::vector<std::pair<Key, std::vector<Value>>> DbSink::Aggregate(
    const std::vector<int>& key_cols, const std::vector<AggSpec>& aggs,
    const ExprRef& pred) const {
  // Reuse the unbounded partial aggregator as a plain hash aggregate.
  PartialAggregator agg(0, key_cols, aggs);
  FinalAggregator fin(aggs);
  std::vector<PartialGroup> partials;
  for (const TupleRef& t : table_) {
    if (pred != nullptr && !Truthy(pred->Eval(*t))) continue;
    agg.Add(*t, &partials);
  }
  agg.Flush(&partials);
  for (PartialGroup& g : partials) fin.Merge(std::move(g));
  return fin.Results();
}

}  // namespace sqp
