#ifndef SQP_ARCH_DECOMPOSE_H_
#define SQP_ARCH_DECOMPOSE_H_

#include <string>
#include <vector>

#include "agg/partial_agg.h"
#include "common/status.h"
#include "exec/expr.h"

namespace sqp {

/// Two-level decomposition of a grouped aggregation (slides 37 and 54):
/// the resource-limited low level computes *partial* aggregates in
/// constant memory; the high level merges partials and finalizes.
///
/// Low-level output layout per group: [ts, keys..., low_aggs...].
/// High-level runs `high_specs` over that layout (grouping by the same
/// keys) and produces [ts, keys..., high_aggs...]; `finalizers` then map
/// that layout to the query's aggregate values (e.g. avg = sum/count).
struct DecomposedAggregate {
  std::vector<AggSpec> low_specs;
  std::vector<AggSpec> high_specs;
  /// One expression per original aggregate, over the high-level output
  /// layout [ts, keys..., high_aggs...].
  std::vector<ExprRef> finalizers;
};

/// Decomposes the aggregate list of a query with `num_keys` grouping
/// columns. Fails with Unimplemented for holistic aggregates (median,
/// count_distinct): those cannot be decomposed exactly — the tutorial's
/// answer is synopses (slide 38).
///
/// `agg_input_cols[i]` is the input column (combined layout) of original
/// aggregate i; count(*) uses -1.
Result<DecomposedAggregate> DecomposeAggregates(
    const std::vector<AggSpec>& aggs, int num_keys);

}  // namespace sqp

#endif  // SQP_ARCH_DECOMPOSE_H_
