#ifndef SQP_ARCH_SYSTEM_H_
#define SQP_ARCH_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "agg/partial_agg.h"
#include "arch/db_sink.h"
#include "arch/decompose.h"
#include "arch/node.h"
#include "exec/aggregate_op.h"
#include "exec/plan.h"
#include "exec/project.h"
#include "window/time_window.h"

namespace sqp {

/// The physical operator wrapping Gigascope's low-level partial
/// aggregation (slide 37): a fixed-slot group table per tumbling bucket.
/// Collisions evict the resident group downstream as a *partial* result;
/// bucket close-out flushes all residents. Output layout:
/// [ts = bucket start, keys..., low agg values...].
class PartialAggOp : public Operator {
 public:
  PartialAggOp(size_t slots, std::vector<int> key_cols,
               std::vector<AggSpec> low_specs, int64_t window_size,
               std::string name = "partial-agg");

  void Push(const Element& e, int port = 0) override;
  void Flush() override;
  size_t StateBytes() const override;

  const PartialAggStats& agg_stats() const;

 private:
  void EmitPartials(std::vector<PartialGroup>* groups);
  void CloseBucket();

  std::vector<int> key_cols_;
  std::vector<AggSpec> low_specs_;
  int64_t window_size_;
  int64_t current_bucket_ = INT64_MIN;
  std::unique_ptr<PartialAggregator> agg_;
  size_t slots_;
};

/// Configuration of the end-to-end 3-level pipeline (slide 14):
/// low-level DSMS (bounded groups) -> high-level DSMS (exact merge)
/// -> DBMS (stored relation).
struct ThreeLevelConfig {
  /// Grouping columns of the input schema.
  std::vector<int> key_cols;
  /// The query's aggregates (must be decomposable).
  std::vector<AggSpec> aggs;
  /// Tumbling window width (time units) for per-bucket results.
  int64_t window_size = 60;
  /// Group slots available at the low level (0 = unbounded).
  size_t low_slots = 64;
  /// Optional WHERE predicate, evaluated at the low level before
  /// aggregation (selection pushdown to the observation point).
  ExprRef prefilter;
  NodeOptions low_node{"low", 1024, 8.0, 1.0};
  NodeOptions high_node{"high", 0, 64.0, 1.0};
};

/// Wires the full architecture and owns all operators. Input tuples
/// `Arrive` at the low node; final exact per-bucket aggregates land in
/// the DBMS relation (`db()`).
class ThreeLevelSystem {
 public:
  static Result<std::unique_ptr<ThreeLevelSystem>> Make(
      SchemaRef input_schema, ThreeLevelConfig config);

  /// Feeds one input tuple to the low level; false = dropped at entry.
  bool Arrive(const TupleRef& t);

  /// One time unit of processing at both DSMS levels.
  void Tick();

  /// Finishes the stream: drains queues and flushes all levels.
  void Drain();

  DsmsNode& low_node() { return *low_; }
  DsmsNode& high_node() { return *high_; }
  const DbSink& db() const { return *db_; }
  const PartialAggOp& partial_agg() const { return *partial_; }

 private:
  ThreeLevelSystem() = default;

  ThreeLevelConfig config_;
  Plan plan_;
  PartialAggOp* partial_ = nullptr;
  GroupByAggregateOp* final_agg_ = nullptr;
  DbSink* db_ = nullptr;
  std::unique_ptr<DsmsNode> low_;
  std::unique_ptr<DsmsNode> high_;
  std::unique_ptr<Operator> low_to_high_;  // Callback bridging the levels.
};

}  // namespace sqp

#endif  // SQP_ARCH_SYSTEM_H_
