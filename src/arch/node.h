#ifndef SQP_ARCH_NODE_H_
#define SQP_ARCH_NODE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "exec/operator.h"

namespace sqp {

/// Resource profile of a DSMS node (slide 15): the low level is memory-
/// and CPU-limited; the high level is richer; the DBMS richest.
struct NodeOptions {
  std::string name = "node";
  /// Input queue bound in elements (0 = unbounded). Overflow drops.
  size_t queue_limit = 0;
  /// Work units available per Tick().
  double capacity_per_tick = 1.0;
  /// Work units consumed per element processed.
  double cost_per_element = 1.0;
};

/// One observation point in the 3-level architecture: a bounded input
/// queue in front of an operator chain. Elements that arrive faster than
/// `capacity_per_tick / cost_per_element` are dropped — the drops the
/// tutorial's low-level engineering fights (slide 53).
class DsmsNode {
 public:
  /// `entry` is the first operator of the node's chain; the chain's last
  /// operator should be wired (by the caller) to the next level.
  DsmsNode(Operator* entry, NodeOptions options);

  /// Enqueues an arriving element; returns false if dropped.
  bool Arrive(Element e);

  /// Processes up to the node's capacity.
  void Tick();

  /// Processes everything left (end of experiment) and flushes the chain.
  void Drain();

  uint64_t dropped() const { return dropped_; }
  uint64_t processed() const { return processed_; }
  size_t queue_len() const { return queue_.size(); }
  const NodeOptions& options() const { return options_; }
  double DropRate() const {
    uint64_t total = processed_ + dropped_ + queue_.size();
    return total == 0 ? 0.0
                      : static_cast<double>(dropped_) /
                            static_cast<double>(total);
  }

 private:
  Operator* entry_;
  NodeOptions options_;
  std::deque<Element> queue_;
  double budget_carry_ = 0.0;
  uint64_t dropped_ = 0;
  uint64_t processed_ = 0;
};

}  // namespace sqp

#endif  // SQP_ARCH_NODE_H_
