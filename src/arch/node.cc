#include "arch/node.h"

namespace sqp {

DsmsNode::DsmsNode(Operator* entry, NodeOptions options)
    : entry_(entry), options_(std::move(options)) {}

bool DsmsNode::Arrive(Element e) {
  if (options_.queue_limit != 0 && queue_.size() >= options_.queue_limit &&
      !e.is_punctuation()) {
    ++dropped_;
    return false;
  }
  queue_.push_back(std::move(e));
  return true;
}

void DsmsNode::Tick() {
  double budget = options_.capacity_per_tick + budget_carry_;
  while (!queue_.empty() && budget >= options_.cost_per_element) {
    budget -= options_.cost_per_element;
    entry_->Push(queue_.front(), 0);
    queue_.pop_front();
    ++processed_;
  }
  // Unused fractional budget carries to the next tick (bounded to one
  // element's worth so idle time doesn't accumulate unbounded capacity).
  budget_carry_ = queue_.empty()
                      ? 0.0
                      : std::min(budget, options_.cost_per_element);
}

void DsmsNode::Drain() {
  while (!queue_.empty()) {
    entry_->Push(queue_.front(), 0);
    queue_.pop_front();
    ++processed_;
  }
  entry_->Flush();
}

}  // namespace sqp
