#include "arch/system.h"

#include "exec/select.h"

namespace sqp {

PartialAggOp::PartialAggOp(size_t slots, std::vector<int> key_cols,
                           std::vector<AggSpec> low_specs, int64_t window_size,
                           std::string name)
    : Operator(std::move(name)),
      key_cols_(std::move(key_cols)),
      low_specs_(std::move(low_specs)),
      window_size_(window_size),
      agg_(std::make_unique<PartialAggregator>(slots, key_cols_, low_specs_)),
      slots_(slots) {}

const PartialAggStats& PartialAggOp::agg_stats() const {
  return agg_->stats();
}

void PartialAggOp::EmitPartials(std::vector<PartialGroup>* groups) {
  int64_t bucket_start =
      current_bucket_ == INT64_MIN ? 0 : current_bucket_ * window_size_;
  for (PartialGroup& g : *groups) {
    std::vector<Value> row;
    row.reserve(1 + g.key.parts.size() + g.accs.size());
    row.push_back(Value(bucket_start));
    for (const Value& v : g.key.parts) row.push_back(v);
    for (const auto& acc : g.accs) row.push_back(acc->Result());
    Emit(Element(MakeTuple(bucket_start, std::move(row))));
  }
  groups->clear();
}

void PartialAggOp::CloseBucket() {
  std::vector<PartialGroup> flushed;
  agg_->Flush(&flushed);
  EmitPartials(&flushed);
}

void PartialAggOp::Push(const Element& e, int /*port*/) {
  CountIn(e);
  if (e.is_punctuation()) {
    if (!e.punctuation().has_key &&
        e.punctuation().ts / window_size_ > current_bucket_) {
      CloseBucket();
    }
    Emit(e);
    return;
  }
  const Tuple& t = *e.tuple();
  int64_t bucket = t.ts() / window_size_;
  if (bucket != current_bucket_) {
    CloseBucket();
    current_bucket_ = bucket;
  }
  std::vector<PartialGroup> evicted;
  agg_->Add(t, &evicted);
  EmitPartials(&evicted);
}

void PartialAggOp::Flush() {
  CloseBucket();
  Operator::Flush();
}

size_t PartialAggOp::StateBytes() const {
  return sizeof(*this) + agg_->MemoryBytes();
}

Result<std::unique_ptr<ThreeLevelSystem>> ThreeLevelSystem::Make(
    SchemaRef input_schema, ThreeLevelConfig config) {
  auto decomposed =
      DecomposeAggregates(config.aggs, static_cast<int>(config.key_cols.size()));
  if (!decomposed.ok()) return decomposed.status();

  auto sys = std::unique_ptr<ThreeLevelSystem>(new ThreeLevelSystem());
  sys->config_ = config;
  size_t nk = config.key_cols.size();

  // --- Low level: optional pushed-down selection, then fixed-slot
  // partial aggregation. ---
  sys->partial_ = sys->plan_.Make<PartialAggOp>(
      config.low_slots, config.key_cols, decomposed->low_specs,
      config.window_size);
  Operator* low_entry = sys->partial_;
  if (config.prefilter != nullptr) {
    auto* select = sys->plan_.Make<SelectOp>(config.prefilter, "low-select");
    select->SetOutput(sys->partial_);
    low_entry = select;
  }

  // --- High level: exact merge of partials. ---
  GroupByOptions high_opt;
  for (size_t k = 0; k < nk; ++k) {
    high_opt.key_cols.push_back(static_cast<int>(1 + k));
  }
  high_opt.aggs = decomposed->high_specs;
  high_opt.window_size = config.window_size;
  sys->final_agg_ = sys->plan_.Make<GroupByAggregateOp>(high_opt, "final-agg");

  // Finalizer projection: [ts, keys..., finalized values...].
  std::vector<ExprRef> proj;
  proj.push_back(Col(0));
  for (size_t k = 0; k < nk; ++k) proj.push_back(Col(static_cast<int>(1 + k)));
  for (const ExprRef& f : decomposed->finalizers) proj.push_back(f);
  auto* finalize = sys->plan_.Make<ProjectOp>(proj, "finalize");
  sys->final_agg_->SetOutput(finalize);

  // --- DBMS: stored relation of final per-bucket aggregates. ---
  std::vector<Field> db_fields = {{"ts", ValueType::kInt}};
  for (size_t k = 0; k < nk; ++k) {
    db_fields.push_back(
        input_schema->field(static_cast<size_t>(config.key_cols[k])));
  }
  for (size_t i = 0; i < config.aggs.size(); ++i) {
    db_fields.push_back(
        {std::string(AggKindName(config.aggs[i].kind)) + std::to_string(i),
         ValueType::kDouble});
  }
  auto db_schema = std::make_shared<const Schema>(Schema(std::move(db_fields)));
  sys->db_ = sys->plan_.Make<DbSink>(db_schema);
  finalize->SetOutput(sys->db_);

  // --- Nodes with their resource profiles; the bridge forwards the low
  // level's partial tuples into the high node's bounded queue. ---
  sys->low_ = std::make_unique<DsmsNode>(low_entry, config.low_node);
  sys->high_ = std::make_unique<DsmsNode>(sys->final_agg_, config.high_node);
  sys->low_to_high_ = std::make_unique<CallbackSink>(
      [high = sys->high_.get()](const Element& e) { high->Arrive(e); });
  sys->partial_->SetOutput(sys->low_to_high_.get());

  return sys;
}

bool ThreeLevelSystem::Arrive(const TupleRef& t) {
  return low_->Arrive(Element(t));
}

void ThreeLevelSystem::Tick() {
  low_->Tick();
  high_->Tick();
}

void ThreeLevelSystem::Drain() {
  low_->Drain();
  high_->Drain();
}

}  // namespace sqp
