#include "arch/engine.h"

#include <cstdio>

#include "obs/trace.h"

namespace sqp {

namespace {

/// Forwards every element to the collector (when retention is on) and
/// the optional callback, and claims the query's pending end-to-end
/// latency sample (armed at ingest) when an output tuple arrives.
class TeeSink : public Operator {
 public:
  TeeSink(CollectorSink* collector,
          const std::function<void(const TupleRef&)>* callback,
          obs::Histogram* latency_hist,
          std::atomic<uint64_t>* pending_ingest_ns)
      : Operator("tee"),
        collector_(collector),
        callback_(callback),
        latency_hist_(latency_hist),
        pending_(pending_ingest_ns) {}

  void Push(const Element& e, int port = 0) override {
    CountIn(e);
    if (latency_hist_ != nullptr && e.is_tuple() &&
        pending_->load(std::memory_order_relaxed) != 0) {
      // exchange(0) claims the sample exactly once even if another
      // output races in; the acquire pairs with the ingest-side release
      // so the timestamp read is the one the prober wrote.
      uint64_t t0 = pending_->exchange(0, std::memory_order_acquire);
      if (t0 != 0) latency_hist_->Observe(obs::NowNs() - t0);
    }
    if (collector_ != nullptr) collector_->Push(e, port);
    if (*callback_ && e.is_tuple()) (*callback_)(e.tuple());
  }

 private:
  CollectorSink* collector_;  // Null: SubmitOptions::collect was false.
  const std::function<void(const TupleRef&)>* callback_;
  obs::Histogram* latency_hist_;
  std::atomic<uint64_t>* pending_;
};

/// Whole-query stage for plans that are not linear chains (joins,
/// multi-input): one worker drives the compiled query; the plan's
/// existing internal wiring (including its sink) is untouched.
class QueryStageOp : public Operator {
 public:
  explicit QueryStageOp(cql::CompiledQuery* q)
      : Operator("query-stage"), q_(q) {}

  void Push(const Element& e, int port = 0) override {
    CountIn(e);
    q_->Push(e, port);
  }

  void Flush() override { q_->Finish(); }

 private:
  cql::CompiledQuery* q_;
};

}  // namespace

StreamEngine::StreamEngine() {
  // Per-query watermark gauges (sqp_query_watermark_lag,
  // sqp_query_source_watermark) join every snapshot/scrape.
  metrics_.AddCollector("profiler", [this](obs::SnapshotBuilder& b) {
    profiler_.Publish(b);
  });
}

Status StreamEngine::RegisterStream(const std::string& name, SchemaRef schema,
                                    std::vector<FieldDomain> domains,
                                    StreamOptions options) {
  std::unique_lock<std::shared_mutex> reg(reg_mu_);
  SQP_RETURN_NOT_OK(
      catalog_.Register(name, std::move(schema), std::move(domains)));
  stream_options_[name] = options;
  ingest_counters_[name] =
      metrics_.GetCounter("sqp_stream_ingested_total", {{"stream", name}});
  return Status::OK();
}

Result<QueryHandle*> StreamEngine::Submit(const std::string& query_text,
                                          SubmitOptions options) {
  std::unique_lock<std::shared_mutex> reg(reg_mu_);
  auto compiled = cql::Compile(query_text, catalog_);
  if (!compiled.ok()) return compiled.status();

  auto handle = std::make_unique<QueryHandle>();
  handle->text_ = query_text;
  handle->query_ = std::move(*compiled);
  handle->sink_ = std::make_unique<CollectorSink>();
  handle->callback_ = std::move(options.on_result);

  if (metrics_enabled_) {
    handle->metrics_label_ = "q" + std::to_string(query_seq_);
    handle->query_->plan().BindMetrics(metrics_, handle->metrics_label_);
    handle->latency_hist_ = metrics_.GetHistogram(
        "sqp_query_latency_ns", {{"query", handle->metrics_label_}});
  }
  ++query_seq_;

  handle->tee_ = std::make_unique<TeeSink>(
      options.collect ? handle->sink_.get() : nullptr, &handle->callback_,
      handle->latency_hist_, &handle->pending_ingest_ns_);
  handle->query_->AttachSink(handle->tee_.get());

  // Profile the query: one OpProfile slot per plan operator plus a
  // source-side watermark tap. After AttachSink so the plan root has
  // its outward edge (BindPlan's liveness walk reads output()).
  if (metrics_enabled_) {
    handle->profile_source_ =
        profiler_.Register(handle->metrics_label_, query_text);
    profiler_.BindPlan(handle->metrics_label_, handle->query_->plan());
  }
  events_.Emit(obs::EventKind::kQuerySubmit, handle->metrics_label_,
               query_text);

  // Wire per-input front-ends: reorder and/or heartbeat per the owning
  // stream's options.
  const auto& from = handle->query_->analysis().ast.from;
  for (int i = 0; i < handle->query_->num_inputs(); ++i) {
    const std::string& stream = from[static_cast<size_t>(i)].name;
    const StreamOptions& opt = stream_options_[stream];
    Operator* entry = handle->query_->input(i);
    // NOTE: CompiledQuery::Push handles ports internally; front-ends
    // push into the query via a callback so port routing is preserved.
    cql::CompiledQuery* q = handle->query_.get();
    Operator* target = nullptr;
    (void)entry;
    if (opt.heartbeat_period > 0) {
      auto hb = std::make_unique<HeartbeatOp>(opt.heartbeat_period,
                                              opt.reorder_slack);
      auto fwd = std::make_unique<CallbackSink>(
          [q, i](const Element& e) { q->Push(e, i); });
      hb->SetOutput(fwd.get());
      target = hb.get();
      handle->front_.push_back(std::move(fwd));
      handle->front_.push_back(std::move(hb));
    }
    if (opt.reorder_slack > 0) {
      auto ro = std::make_unique<SlackReorderOp>(opt.reorder_slack);
      if (target != nullptr) {
        ro->SetOutput(target);
      } else {
        auto fwd = std::make_unique<CallbackSink>(
            [q, i](const Element& e) { q->Push(e, i); });
        ro->SetOutput(fwd.get());
        handle->front_.push_back(std::move(fwd));
      }
      target = ro.get();
      handle->front_.push_back(std::move(ro));
    }
    QueryHandle::Tap tap;
    tap.stream = stream;
    tap.entry = target;  // nullptr = push straight into the query.
    tap.port = i;
    handle->taps_.push_back(tap);
  }

  // Stamp the archive boundary under the same exclusive lock that makes
  // the query live: every record at or below it was archived before any
  // live delivery to this handle could happen, every record above it
  // will be delivered live. ReplayInto replays only up to this seq, so
  // a replay racing ingest never double-delivers.
  if (dur_ != nullptr) handle->submit_seq_ = dur_->last_seq();

  queries_.push_back(std::move(handle));
  return queries_.back().get();
}

Status StreamEngine::EnableParallel(QueryHandle* handle,
                                    ParallelQueryOptions options) {
  std::unique_lock<std::shared_mutex> reg(reg_mu_);
  if (handle == nullptr) return Status::InvalidArgument("null handle");
  if (handle->parallel_ != nullptr) {
    return Status::InvalidArgument("query is already parallel");
  }
  if (handle->ingested_) {
    return Status::InvalidArgument(
        "EnableParallel must precede the first Ingest for this query");
  }
  for (const QueryHandle::Tap& tap : handle->taps_) {
    if (tap.entry != nullptr) {
      return Status::InvalidArgument(
          "parallel execution does not yet support reorder/heartbeat "
          "front-ends");
    }
  }

  cql::CompiledQuery* q = handle->query_.get();
  std::vector<ParallelExecutor::Stage> stages;
  Operator* sink = nullptr;
  bool chain = false;
  // A sharded plan always runs whole-query: a ShardedOp's merge worker
  // drives the downstream edge, and op-per-stage mode would hand that
  // same edge (a stage relay) to a stage worker too — two drivers, one
  // operator. The shard/merge threads already decouple the pipeline.
  if (q->num_inputs() == 1 && handle->sharded_ops_.empty()) {
    // Split the linear chain input -> ... -> root op-per-stage; the tee
    // (collector + callback) stays attached as the executor's sink and
    // runs on the last stage's worker.
    chain = true;
    int in_port = q->input_port(0);
    for (Operator* op = q->input(0); op != nullptr && op != handle->tee_.get();
         op = op->output()) {
      ParallelExecutor::Stage s;
      s.op = op;
      s.queue_limit = options.queue_limit;
      s.backpressure = options.backpressure;
      s.max_batch = options.max_batch;
      s.in_port = in_port;
      // Columnar opt-in: the stage converts claimed runs only when the
      // operator can actually evaluate them column-at-a-time.
      s.columnar = handle->columnar_ && op->SupportsColumns(in_port);
      in_port = op->output_port();  // Port the *next* stage is fed on.
      stages.push_back(s);
    }
    sink = handle->tee_.get();
  } else {
    // Joins/multi-input plans: run the whole compiled query as one
    // stage. Ingest still decouples from processing; the plan's wiring
    // (root -> tee) is left untouched, so no sink override.
    handle->parallel_adapter_ = std::make_unique<QueryStageOp>(q);
    ParallelExecutor::Stage s;
    s.op = handle->parallel_adapter_.get();
    s.queue_limit = options.queue_limit;
    s.backpressure = options.backpressure;
    s.max_batch = options.max_batch;
    stages.push_back(s);
  }

  handle->chain_mode_ = chain;
  handle->parallel_ = std::make_unique<ParallelExecutor>(std::move(stages),
                                                         sink);
  handle->parallel_->Start();
  // Per-stage queue stats join the registry through the shared
  // StageStats path (one shape for serial and threaded executors).
  const std::string label = LabelFor(handle);
  metrics_.AddCollector(
      "stages:" + label,
      [exec = handle->parallel_.get(), label](obs::SnapshotBuilder& b) {
        exec->CollectStats(b, {{"query", label}});
      });
  return Status::OK();
}

Status StreamEngine::EnableColumnar(QueryHandle* handle) {
  std::unique_lock<std::shared_mutex> reg(reg_mu_);
  if (handle == nullptr) return Status::InvalidArgument("null handle");
  if (handle->ingested_) {
    return Status::InvalidArgument(
        "EnableColumnar must precede the first Ingest for this query");
  }
  if (handle->parallel_ != nullptr) {
    return Status::InvalidArgument(
        "EnableColumnar must precede EnableParallel (stages capture the "
        "conversion flag when they are built)");
  }
  if (handle->sharded()) {
    return Status::InvalidArgument(
        "EnableColumnar must precede EnableSharding (replicas capture the "
        "conversion flag when the plan is rewritten)");
  }
  handle->columnar_ = true;
  return Status::OK();
}

Status StreamEngine::EnableSharding(QueryHandle* handle,
                                    ShardPlanOptions options) {
  std::unique_lock<std::shared_mutex> reg(reg_mu_);
  if (handle == nullptr) return Status::InvalidArgument("null handle");
  if (handle->sharded()) {
    return Status::AlreadyExists("sharding already enabled");
  }
  if (handle->ingested_) {
    return Status::InvalidArgument(
        "EnableSharding must precede the first Ingest for this query");
  }
  if (handle->parallel_ != nullptr) {
    return Status::InvalidArgument(
        "EnableSharding must precede EnableParallel (the rewrite moves "
        "plan edges the executor's stages captured)");
  }
  if (options.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }

  cql::CompiledQuery* q = handle->query_.get();
  options.columnar = options.columnar || handle->columnar_;
  options.events = &events_;
  options.event_label = LabelFor(handle);
  handle->shard_rewrites_ = ShardStatefulOps(q->plan(), options);
  for (const ShardRewrite& rw : handle->shard_rewrites_) {
    if (rw.sharded == nullptr) continue;
    // The rewrite fixed the plan-internal edges; the query's external
    // edges (input taps, root) follow here.
    q->ReplaceOperator(rw.original, rw.sharded);
    handle->sharded_ops_.push_back(rw.sharded);
  }
  if (handle->sharded_ops_.empty()) return Status::OK();

  const std::string label = LabelFor(handle);
  // The rewrite spliced new operators (each ShardedOp) into the plan:
  // re-bind metrics (existing slots are reused, the ShardedOps get
  // fresh ones) and re-walk the profile tree, which also drops the
  // disconnected originals from the EXPLAIN ANALYZE view.
  if (metrics_enabled_ && handle->profile_source_ != nullptr) {
    q->plan().BindMetrics(metrics_, label);
    profiler_.BindPlan(label, q->plan());
  }
  metrics_.AddCollector("shards:" + label,
                        [handle, label](obs::SnapshotBuilder& b) {
                          for (const ShardedOp* op : handle->sharded_ops_) {
                            op->CollectStats(b, {{"query", label}});
                          }
                        });
  return Status::OK();
}

void StreamEngine::DeliverDirect(QueryHandle& q, const QueryHandle::Tap& tap,
                                 const Element& e) {
  // Source-side watermark tap: stamp (event ts, ingest ns) so the
  // profiler can report per-operator lag and propagation delay against
  // what actually entered the query.
  if (q.profile_source_ != nullptr && e.is_punctuation() &&
      !e.punctuation().has_key) {
    q.profile_source_->OnWatermark(e.punctuation().ts);
  }
  // Arm the end-to-end latency probe on every Nth tuple that actually
  // enters the query (post-shedding, so dropped tuples don't leave a
  // stale timestamp that a much later output would claim). Countdown
  // instead of modulo: the sample period is runtime-configurable, and a
  // per-tuple integer division is measurable on this path.
  if (q.latency_hist_ != nullptr && latency_sample_every_ > 0 &&
      e.is_tuple() && --q.latency_countdown_ == 0) {
    q.latency_countdown_ = latency_sample_every_;
    uint64_t expected = 0;
    q.pending_ingest_ns_.compare_exchange_strong(expected, obs::NowNs(),
                                                 std::memory_order_release,
                                                 std::memory_order_relaxed);
  }
  if (q.parallel_ != nullptr) {
    // Chain mode feeds the entry operator's port itself; the
    // whole-query stage needs the input index for port routing.
    if (q.chain_mode_) {
      q.parallel_->Arrive(e);
    } else {
      q.parallel_->ArriveOn(e, tap.port);
    }
  } else if (tap.entry != nullptr) {
    tap.entry->Process(e, 0);
  } else {
    q.query_->Push(e, tap.port);
  }
}

Status StreamEngine::IngestElement(const std::string& stream,
                                   const Element& e) {
  // Shared: delivery may overlap registration/teardown from a server
  // thread, but never another delivery (single ingest thread contract).
  std::shared_lock<std::shared_mutex> reg(reg_mu_);
  if (catalog_.Lookup(stream) == nullptr) {
    return Status::NotFound("unknown stream: " + stream);
  }
  if (finished_) {
    return Status::InvalidArgument("engine already finished");
  }
  auto ic = ingest_counters_.find(stream);
  if (ic != ingest_counters_.end()) ic->second->Inc();
  // Archive-before-deliver: once delivery runs, the element must be
  // recoverable. (Group commit means the bytes may still sit in the
  // buffer for up to a flush interval — a crash inside that window
  // loses the tail, which replay tolerates by construction.) A sticky
  // archive IO failure therefore stops ingest before delivery: the
  // element can never be made durable, so letting it flow would hand
  // out results that no recovery could reproduce.
  if (dur_ != nullptr) {
    auto seq = dur_->Append(stream, e);
    if (!seq.ok()) {
      if (!flush_error_logged_) {
        // Once per sticky failure, not once per rejected ingest.
        flush_error_logged_ = true;
        events_.Emit(obs::EventKind::kFlushError, "",
                     "archive append failed on stream '" + stream +
                         "': " + seq.status().ToString());
      }
      return seq.status();
    }
  }
  for (auto& q : queries_) {
    for (const QueryHandle::Tap& tap : q->taps_) {
      if (tap.stream != stream) continue;
      q->ingested_ = true;
      if (q->shed_gate_ != nullptr) {
        // The gate forwards surviving elements into DeliverDirect via
        // its CallbackSink output; shed tuples end here.
        q->shed_gate_->Process(e, 0);
      } else {
        DeliverDirect(*q, tap, e);
      }
    }
  }
  // Periodic checkpoint rides the ingest thread after delivery: the
  // serial operators are quiescent here, and the shared lock keeps
  // registration out.
  if (dur_ != nullptr && dur_->TakeCheckpointDue()) {
    SQP_RETURN_NOT_OK(CheckpointLocked());
  }
  return Status::OK();
}

obs::Monitor& StreamEngine::StartMonitor(obs::MonitorOptions options) {
  if (monitor_ == nullptr) {
    monitor_ = std::make_unique<obs::Monitor>(&metrics_, options);
  }
  monitor_->Start();  // No-op in manual mode or when already running.
  return *monitor_;
}

Result<int> StreamEngine::ServeMetrics(int port) {
  if (http_ != nullptr && http_->serving()) {
    return Status::AlreadyExists("metrics endpoint already on port " +
                                 std::to_string(http_->port()));
  }
  if (monitor_ == nullptr) StartMonitor();
  http_ = std::make_unique<obs::HttpExporter>(&metrics_, monitor_.get());
  http_->SetEventLog(&events_);
  http_->SetProfileSource(
      [this](const std::string& label, std::string* json) {
        obs::QueryProfile profile;
        if (!profiler_.Snapshot(label, &profile)) return false;
        *json = profile.ToJson();
        return true;
      });
  SQP_RETURN_NOT_OK(http_->Serve(port));
  return http_->port();
}

Status StreamEngine::EnableAdaptiveShedding(QueryHandle* handle,
                                            AdaptiveShedOptions options) {
  std::unique_lock<std::shared_mutex> reg(reg_mu_);
  if (handle == nullptr) return Status::InvalidArgument("null handle");
  if (handle->shed_gate_ != nullptr) {
    return Status::AlreadyExists("adaptive shedding already enabled");
  }
  if (handle->taps_.size() != 1) {
    return Status::InvalidArgument(
        "adaptive shedding supports single-input queries only");
  }
  std::function<size_t()> probe = std::move(options.backlog_probe);
  if (!probe) {
    if (handle->parallel_ == nullptr) {
      return Status::InvalidArgument(
          "serial queries have no executor queue to watch: supply "
          "AdaptiveShedOptions::backlog_probe");
    }
    // Backlog (enqueued - processed) rather than instantaneous queue
    // occupancy: workers pop whole batches, so q.size() can read 0 while
    // hundreds of elements are in flight inside a stage.
    probe = [exec = handle->parallel_.get()] {
      size_t n = 0;
      for (size_t i = 0; i < exec->num_stages(); ++i) {
        n += exec->stage_stats(i).Backlog();
      }
      return n;
    };
  }
  if (monitor_ == nullptr) StartMonitor();

  const std::string label = LabelFor(handle);

  handle->shedder_ = std::make_unique<FeedbackShedder>(options.controller);
  handle->shed_gate_ =
      std::make_unique<RandomDropOp>(0.0, options.seed, "shed-gate");
  handle->shed_fwd_ = std::make_unique<CallbackSink>(
      [this, handle](const Element& e) {
        DeliverDirect(*handle, handle->taps_[0], e);
      });
  handle->shed_gate_->SetOutput(handle->shed_fwd_.get());

  // Shedding state joins every snapshot/scrape alongside the raw
  // counters it is derived from.
  metrics_.AddCollector(
      "shed:" + label, [handle, label](obs::SnapshotBuilder& b) {
        obs::LabelSet ls{{"query", label}};
        b.AddGauge("sqp_shed_drop_rate", ls, handle->shed_gate_->drop_rate());
        b.AddCounter("sqp_shed_dropped_total", ls,
                     static_cast<double>(handle->shed_gate_->dropped()));
        b.AddGauge("sqp_shed_backlog", ls,
                   static_cast<double>(handle->shed_backlog_.load(
                       std::memory_order_relaxed)));
      });

  // The loop itself: every monitor tick, observed backlog -> controller
  // -> gate drop probability. Runs on the ticking thread with no locks
  // held; the gate's rate is atomic.
  monitor_->AddTickListener(
      "shed:" + label,
      [this, handle, label, probe = std::move(probe)](uint64_t) {
        size_t backlog = probe();
        handle->shed_backlog_.store(backlog, std::memory_order_relaxed);
        const double rate = handle->shedder_->Observe(backlog);
        handle->shed_gate_->set_drop_rate(rate);
        // Gate transitions (crossing 1% drop probability) are lifecycle
        // events; shed_active_ is only ever touched on this thread.
        const bool active = rate > 0.01;
        if (active != handle->shed_active_) {
          handle->shed_active_ = active;
          char msg[96];
          std::snprintf(msg, sizeof(msg),
                        "drop rate %.3f, backlog %zu", rate, backlog);
          events_.Emit(active ? obs::EventKind::kShedActivated
                              : obs::EventKind::kShedDeactivated,
                       label, msg);
        }
      });
  return Status::OK();
}

Status StreamEngine::Ingest(const std::string& stream, const TupleRef& tuple) {
  return IngestElement(stream, Element(tuple));
}

const std::string& StreamEngine::LabelFor(QueryHandle* handle) {
  if (handle->metrics_label_.empty()) {
    // Metrics were off at Submit; assign a label anyway so collectors
    // registered later (stages/shards/shed) have a stable teardown key.
    handle->metrics_label_ = "q" + std::to_string(query_seq_++);
  }
  return handle->metrics_label_;
}

Status StreamEngine::Remove(QueryHandle* handle) {
  if (handle == nullptr) return Status::InvalidArgument("null handle");
  // The shedding tick listener captures the handle and runs on the
  // monitor thread; remove it first (the call barriers on an in-flight
  // tick) so nothing touches the handle's gate/shedder once teardown
  // starts. Done before taking reg_mu_: the listener never takes the
  // registration lock, but keeping the barrier outside the critical
  // section keeps the lock dependency one-directional.
  if (monitor_ != nullptr && !handle->metrics_label_.empty()) {
    monitor_->RemoveTickListener("shed:" + handle->metrics_label_);
  }

  std::unique_lock<std::shared_mutex> reg(reg_mu_);
  size_t index = queries_.size();
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (queries_[i].get() == handle) {
      index = i;
      break;
    }
  }
  if (index == queries_.size()) {
    return Status::NotFound("query is not registered with this engine");
  }

  // Flush so windows/groups close and the final rows reach the sink —
  // unless the engine already finished everything. The caller guarantees
  // the output callback cannot block (see header).
  if (!finished_) {
    if (handle->parallel_ != nullptr) {
      handle->parallel_->Drain();
    } else {
      for (const QueryHandle::Tap& tap : handle->taps_) {
        if (tap.entry != nullptr) tap.entry->Flush();
      }
      handle->query_->Finish();
    }
  }

  // Collectors capture the handle or its executor; RemoveCollector
  // barriers on any snapshot in flight, so after these return nothing
  // can observe the dying query.
  if (!handle->metrics_label_.empty()) {
    const std::string& label = handle->metrics_label_;
    metrics_.RemoveCollector("stages:" + label);
    metrics_.RemoveCollector("shards:" + label);
    metrics_.RemoveCollector("shed:" + label);
  }

  // Detach the profile slots before their storage goes: the query is
  // drained (workers joined above), so no operator thread can still be
  // writing through them. Unregister barriers on in-flight snapshots.
  if (handle->profile_source_ != nullptr) {
    for (const auto& op : handle->query_->plan().operators()) {
      op->BindProfile(nullptr);
    }
    profiler_.Unregister(handle->metrics_label_);
  }
  events_.Emit(obs::EventKind::kQueryStop, handle->metrics_label_,
               handle->text_);

  queries_.erase(queries_.begin() + static_cast<long>(index));
  return Status::OK();
}

void StreamEngine::FinishAll() {
  std::unique_lock<std::shared_mutex> reg(reg_mu_);
  if (finished_) return;
  finished_ = true;
  for (auto& q : queries_) {
    if (q->parallel_ != nullptr) {
      // The drain cascade flushes every stage (chain mode) or runs
      // CompiledQuery::Finish on the worker (whole-query mode), then
      // joins — results are safe to read once this returns.
      q->parallel_->Drain();
      continue;
    }
    // Flush front-ends first (drains reorder buffers into the query),
    // then the query itself via its per-port flush protocol.
    for (const QueryHandle::Tap& tap : q->taps_) {
      if (tap.entry != nullptr) tap.entry->Flush();
    }
    q->query_->Finish();
  }
  if (dur_ != nullptr) {
    // Seal the archive and capture the post-flush state (collectors now
    // hold the final rows): a --replay of a finished run restores
    // everything from the checkpoint and replays nothing.
    (void)CheckpointLocked();
  }
}

bool StreamEngine::ProfileSnapshot(const std::string& label,
                                   obs::QueryProfile* out) const {
  return profiler_.Snapshot(label, out);
}

bool StreamEngine::ProfileSnapshot(const QueryHandle* handle,
                                   obs::QueryProfile* out) const {
  if (handle == nullptr || handle->metrics_label_.empty()) return false;
  return profiler_.Snapshot(handle->metrics_label_, out);
}

std::vector<std::string> StreamEngine::ProfiledQueries() const {
  return profiler_.Labels();
}

size_t StreamEngine::TotalStateBytes() const {
  std::shared_lock<std::shared_mutex> reg(reg_mu_);
  size_t bytes = 0;
  for (const auto& q : queries_) {
    bytes += q->query_->plan().TotalStateBytes();
  }
  return bytes;
}

}  // namespace sqp
