#include "arch/decompose.h"

namespace sqp {

Result<DecomposedAggregate> DecomposeAggregates(
    const std::vector<AggSpec>& aggs, int num_keys) {
  DecomposedAggregate out;
  // Position bookkeeping: low-level output is [ts, keys..., low_aggs...];
  // the high level groups on the same keys and aggregates each low agg
  // column, producing [ts, keys..., high_aggs...].
  auto low_agg_col = [&](size_t j) {
    // Column of low agg j in the low-level *output* layout.
    return 1 + num_keys + static_cast<int>(j);
  };
  auto high_out_col = [&](size_t j) {
    // Column of high agg j in the high-level output layout.
    return 1 + num_keys + static_cast<int>(j);
  };

  for (const AggSpec& a : aggs) {
    switch (a.kind) {
      case AggKind::kCount: {
        size_t j = out.low_specs.size();
        out.low_specs.push_back({AggKind::kCount, a.input_col, 0.5});
        out.high_specs.push_back({AggKind::kSum, low_agg_col(j), 0.5});
        out.finalizers.push_back(Col(high_out_col(j)));
        break;
      }
      case AggKind::kSum:
      case AggKind::kMin:
      case AggKind::kMax: {
        size_t j = out.low_specs.size();
        out.low_specs.push_back({a.kind, a.input_col, 0.5});
        AggKind high = a.kind == AggKind::kSum ? AggKind::kSum : a.kind;
        out.high_specs.push_back({high, low_agg_col(j), 0.5});
        out.finalizers.push_back(Col(high_out_col(j)));
        break;
      }
      case AggKind::kAvg: {
        // avg decomposes into (sum, count) at the low level.
        size_t js = out.low_specs.size();
        out.low_specs.push_back({AggKind::kSum, a.input_col, 0.5});
        out.low_specs.push_back({AggKind::kCount, -1, 0.5});
        out.high_specs.push_back({AggKind::kSum, low_agg_col(js), 0.5});
        out.high_specs.push_back({AggKind::kSum, low_agg_col(js + 1), 0.5});
        // sum / count, forced to double arithmetic.
        out.finalizers.push_back(
            Div(Mul(Col(high_out_col(js)), Lit(1.0)), Col(high_out_col(js + 1))));
        break;
      }
      case AggKind::kMedian:
      case AggKind::kCountDistinct:
        return Status::Unimplemented(
            std::string("holistic aggregate ") + AggKindName(a.kind) +
            " cannot be decomposed exactly; use a synopsis (slide 38)");
      case AggKind::kStddev:
      case AggKind::kFirst:
      case AggKind::kLast:
      case AggKind::kBlend:
        return Status::Unimplemented(
            std::string("aggregate ") + AggKindName(a.kind) +
            " is not supported by two-level decomposition");
      case AggKind::kApproxMedian:
      case AggKind::kApproxCountDistinct:
        // Sketch states merge object-to-object (PartialAggregator ->
        // FinalAggregator) but do not serialize into the scalar partial
        // tuples this decomposition emits between levels.
        return Status::Unimplemented(
            std::string("sketched aggregate ") + AggKindName(a.kind) +
            " merges at the object level; use PartialAggregator/"
            "FinalAggregator directly");
    }
  }
  return out;
}

}  // namespace sqp
