#ifndef SQP_STREAM_QUEUE_H_
#define SQP_STREAM_QUEUE_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "stream/element.h"

namespace sqp {

/// Per-queue counters. Drops happen when a bounded queue overflows —
/// the low-level DSMS failure mode the tutorial repeatedly warns about
/// ("engineered to reduce drops", slide 53).
struct QueueStats {
  uint64_t pushed = 0;
  uint64_t popped = 0;
  uint64_t dropped = 0;
  uint64_t peak_len = 0;
  uint64_t peak_bytes = 0;
};

/// A bounded FIFO of stream elements with drop accounting.
///
/// `max_len == 0` means unbounded. Punctuations are never dropped: losing
/// a watermark would deadlock downstream windows, so an overflowing push
/// of a punctuation evicts the newest data tuple instead.
class StreamQueue {
 public:
  explicit StreamQueue(size_t max_len = 0) : max_len_(max_len) {}

  /// Enqueues; returns false (and counts a drop) if the element was lost.
  bool Push(Element e);

  /// Dequeues the oldest element, or nullopt when empty.
  std::optional<Element> Pop();

  bool empty() const { return q_.empty(); }
  size_t size() const { return q_.size(); }
  size_t bytes() const { return bytes_; }
  size_t max_len() const { return max_len_; }
  const QueueStats& stats() const { return stats_; }

  /// Fraction of pushed data elements that were dropped.
  double DropRate() const {
    return stats_.pushed == 0
               ? 0.0
               : static_cast<double>(stats_.dropped) /
                     static_cast<double>(stats_.pushed + stats_.dropped);
  }

 private:
  size_t max_len_;
  std::deque<Element> q_;
  size_t bytes_ = 0;
  QueueStats stats_;
};

}  // namespace sqp

#endif  // SQP_STREAM_QUEUE_H_
