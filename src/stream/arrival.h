#ifndef SQP_STREAM_ARRIVAL_H_
#define SQP_STREAM_ARRIVAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"

namespace sqp {

/// Generates inter-arrival gaps (in ticks of the logical clock). The
/// scheduling and shedding experiments (slides 42-44) hinge on arrival
/// burstiness, so the process is pluggable.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Number of tuples arriving during tick `t`.
  virtual uint64_t ArrivalsAt(int64_t t) = 0;

  /// Long-run mean arrivals per tick.
  virtual double MeanRate() const = 0;
};

/// Constant rate: `rate` arrivals every tick (fractional rates accumulate).
class UniformArrival : public ArrivalProcess {
 public:
  explicit UniformArrival(double rate) : rate_(rate) {}

  uint64_t ArrivalsAt(int64_t t) override;
  double MeanRate() const override { return rate_; }

 private:
  double rate_;
  double carry_ = 0.0;
};

/// Poisson arrivals with mean `rate` per tick.
class PoissonArrival : public ArrivalProcess {
 public:
  PoissonArrival(double rate, uint64_t seed) : rate_(rate), rng_(seed) {}

  uint64_t ArrivalsAt(int64_t t) override;
  double MeanRate() const override { return rate_; }

 private:
  double rate_;
  Rng rng_;
};

/// Markov-modulated on/off ("bursty") arrivals: in the ON state tuples
/// arrive at `on_rate`; in OFF, none. State dwell times are geometric
/// with the given mean lengths. This is the canonical model behind the
/// Chain scheduling analysis [BBDM03].
class BurstyArrival : public ArrivalProcess {
 public:
  BurstyArrival(double on_rate, double mean_on_len, double mean_off_len,
                uint64_t seed);

  uint64_t ArrivalsAt(int64_t t) override;
  double MeanRate() const override;

 private:
  double on_rate_;
  double p_leave_on_;
  double p_leave_off_;
  bool on_ = true;
  Rng rng_;
  UniformArrival on_gen_;
};

/// Replays an explicit per-tick schedule; used to reproduce the slide-43
/// table exactly. Ticks beyond the schedule produce zero arrivals.
class ScheduledArrival : public ArrivalProcess {
 public:
  explicit ScheduledArrival(std::vector<uint64_t> arrivals_per_tick)
      : schedule_(std::move(arrivals_per_tick)) {}

  uint64_t ArrivalsAt(int64_t t) override;
  double MeanRate() const override;

 private:
  std::vector<uint64_t> schedule_;
};

}  // namespace sqp

#endif  // SQP_STREAM_ARRIVAL_H_
