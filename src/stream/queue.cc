#include "stream/queue.h"

namespace sqp {

bool StreamQueue::Push(Element e) {
  if (max_len_ != 0 && q_.size() >= max_len_) {
    if (!e.is_punctuation()) {
      ++stats_.dropped;
      return false;
    }
    // Punctuations must get through: make room by evicting the newest
    // data tuple (if any); otherwise just exceed the bound by one.
    for (auto it = q_.rbegin(); it != q_.rend(); ++it) {
      if (it->is_tuple()) {
        bytes_ -= it->MemoryBytes();
        q_.erase(std::next(it).base());
        ++stats_.dropped;
        break;
      }
    }
  }
  bytes_ += e.MemoryBytes();
  q_.push_back(std::move(e));
  ++stats_.pushed;
  stats_.peak_len = std::max<uint64_t>(stats_.peak_len, q_.size());
  stats_.peak_bytes = std::max<uint64_t>(stats_.peak_bytes, bytes_);
  return true;
}

std::optional<Element> StreamQueue::Pop() {
  if (q_.empty()) return std::nullopt;
  Element e = std::move(q_.front());
  q_.pop_front();
  bytes_ -= e.MemoryBytes();
  ++stats_.popped;
  return e;
}

}  // namespace sqp
