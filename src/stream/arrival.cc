#include "stream/arrival.h"

#include <cmath>

namespace sqp {

uint64_t UniformArrival::ArrivalsAt(int64_t /*t*/) {
  carry_ += rate_;
  uint64_t n = static_cast<uint64_t>(carry_);
  carry_ -= static_cast<double>(n);
  return n;
}

uint64_t PoissonArrival::ArrivalsAt(int64_t /*t*/) {
  // Knuth's method; rate per tick is small in our experiments.
  double limit = std::exp(-rate_);
  uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng_.NextDouble();
  } while (p > limit);
  return k - 1;
}

BurstyArrival::BurstyArrival(double on_rate, double mean_on_len,
                             double mean_off_len, uint64_t seed)
    : on_rate_(on_rate),
      p_leave_on_(mean_on_len <= 0 ? 1.0 : 1.0 / mean_on_len),
      p_leave_off_(mean_off_len <= 0 ? 1.0 : 1.0 / mean_off_len),
      rng_(seed),
      on_gen_(on_rate) {}

uint64_t BurstyArrival::ArrivalsAt(int64_t t) {
  uint64_t n = on_ ? on_gen_.ArrivalsAt(t) : 0;
  if (on_) {
    if (rng_.Bernoulli(p_leave_on_)) on_ = false;
  } else {
    if (rng_.Bernoulli(p_leave_off_)) on_ = true;
  }
  return n;
}

double BurstyArrival::MeanRate() const {
  double mean_on = 1.0 / p_leave_on_;
  double mean_off = 1.0 / p_leave_off_;
  return on_rate_ * mean_on / (mean_on + mean_off);
}

uint64_t ScheduledArrival::ArrivalsAt(int64_t t) {
  if (t < 0 || static_cast<size_t>(t) >= schedule_.size()) return 0;
  return schedule_[static_cast<size_t>(t)];
}

double ScheduledArrival::MeanRate() const {
  if (schedule_.empty()) return 0.0;
  uint64_t total = 0;
  for (uint64_t a : schedule_) total += a;
  return static_cast<double>(total) / static_cast<double>(schedule_.size());
}

}  // namespace sqp
