#ifndef SQP_STREAM_ELEMENT_BATCH_H_
#define SQP_STREAM_ELEMENT_BATCH_H_

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

#include "stream/element.h"

namespace sqp {

/// An ordered run of stream elements handed across the engine in one
/// call — the unit of the batched execution path (see
/// Operator::ProcessBatch). Tuples and punctuations keep their relative
/// order, so a batch is semantically identical to pushing its elements
/// one at a time; only the per-element crossing costs (virtual dispatch,
/// queue locks, condvar wakeups) are amortized.
///
/// Small-buffer optimized: up to kInlineCapacity elements live inside
/// the batch object itself, so the common executor hand-off sizes avoid
/// a heap allocation for the batch container; larger batches spill to
/// the heap with doubling growth. Move-only, like the buffers it feeds.
class ElementBatch {
 public:
  static constexpr size_t kInlineCapacity = 8;

  ElementBatch() : data_(inline_ptr()), capacity_(kInlineCapacity) {}

  ~ElementBatch() {
    DestroyAll();
    if (!is_inline()) Allocator().deallocate(data_, capacity_);
  }

  ElementBatch(const ElementBatch&) = delete;
  ElementBatch& operator=(const ElementBatch&) = delete;

  ElementBatch(ElementBatch&& other) noexcept
      : data_(inline_ptr()), capacity_(kInlineCapacity) {
    MoveFrom(std::move(other));
  }

  ElementBatch& operator=(ElementBatch&& other) noexcept {
    if (this == &other) return *this;
    DestroyAll();
    if (!is_inline()) {
      Allocator().deallocate(data_, capacity_);
      data_ = inline_ptr();
      capacity_ = kInlineCapacity;
    }
    MoveFrom(std::move(other));
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  const Element& operator[](size_t i) const { return data_[i]; }
  const Element* begin() const { return data_; }
  const Element* end() const { return data_ + size_; }
  const Element& back() const { return data_[size_ - 1]; }

  // Mutable access: batch consumers (Operator::PushBatch overrides) may
  // move elements out instead of copying — a moved-from slot stays a
  // valid Element until clear(), it just no longer owns a tuple.
  Element& operator[](size_t i) { return data_[i]; }
  Element* begin() { return data_; }
  Element* end() { return data_ + size_; }
  Element& back() { return data_[size_ - 1]; }

  void push_back(Element e) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    ::new (static_cast<void*>(data_ + size_)) Element(std::move(e));
    ++size_;
  }

  /// Destroys the elements; capacity (inline or heap) is retained so a
  /// reused batch buffer stops allocating once warm.
  void clear() {
    DestroyAll();
    size_ = 0;
  }

  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }

  /// Approximate footprint of the batched payloads (queue/shedding
  /// accounting — sums each element's own MemoryBytes, see
  /// Tuple::MemoryBytes), plus the batch buffer itself.
  size_t MemoryBytes() const {
    size_t bytes = sizeof(ElementBatch);
    if (!is_inline()) bytes += capacity_ * sizeof(Element);
    for (size_t i = 0; i < size_; ++i) bytes += data_[i].MemoryBytes();
    return bytes;
  }

 private:
  using Allocator = std::allocator<Element>;

  Element* inline_ptr() {
    return std::launder(reinterpret_cast<Element*>(inline_storage_));
  }
  bool is_inline() const {
    return data_ ==
           std::launder(reinterpret_cast<const Element*>(inline_storage_));
  }

  void DestroyAll() {
    for (size_t i = 0; i < size_; ++i) data_[i].~Element();
  }

  void Grow(size_t new_cap) {
    if (new_cap < kInlineCapacity * 2) new_cap = kInlineCapacity * 2;
    Element* nd = Allocator().allocate(new_cap);
    for (size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(nd + i)) Element(std::move(data_[i]));
      data_[i].~Element();
    }
    if (!is_inline()) Allocator().deallocate(data_, capacity_);
    data_ = nd;
    capacity_ = new_cap;
  }

  /// Precondition: *this is empty and inline (freshly reset).
  void MoveFrom(ElementBatch&& other) noexcept {
    if (other.is_inline()) {
      for (size_t i = 0; i < other.size_; ++i) {
        ::new (static_cast<void*>(data_ + i))
            Element(std::move(other.data_[i]));
      }
      size_ = other.size_;
      other.DestroyAll();
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_ptr();
      other.capacity_ = kInlineCapacity;
    }
    other.size_ = 0;
  }

  Element* data_;
  size_t size_ = 0;
  size_t capacity_;
  alignas(Element) unsigned char inline_storage_[kInlineCapacity *
                                                 sizeof(Element)];
};

}  // namespace sqp

#endif  // SQP_STREAM_ELEMENT_BATCH_H_
