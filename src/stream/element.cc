#include "stream/element.h"

namespace sqp {

std::string Punctuation::ToString() const {
  std::string out = "punct(ts<=" + std::to_string(ts);
  if (has_key) out += ", key=" + key.ToString();
  out += ")";
  return out;
}

std::string Element::ToString() const {
  if (is_punctuation()) return punctuation().ToString();
  if (is_tuple()) return tuple()->ToString();
  return "(empty)";
}

}  // namespace sqp
