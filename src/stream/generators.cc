#include "stream/generators.h"

#include <algorithm>
#include <cmath>

namespace sqp {
namespace gen {

namespace {

SchemaRef MakeSchemaWithTs(std::vector<Field> fields) {
  auto result = Schema::WithOrdering(std::move(fields), "ts");
  // Generators own their schemas; the field lists are static and valid.
  return std::make_shared<const Schema>(std::move(result.value()));
}

}  // namespace

// ---------------------------------------------------------------------------
// CDR
// ---------------------------------------------------------------------------

SchemaRef CdrSchema() {
  static const SchemaRef kSchema = MakeSchemaWithTs({
      {"ts", ValueType::kInt},
      {"origin", ValueType::kInt},
      {"dialed", ValueType::kInt},
      {"duration", ValueType::kInt},
      {"is_intl", ValueType::kInt},
      {"is_tollfree", ValueType::kInt},
      {"is_incomplete", ValueType::kInt},
  });
  return kSchema;
}

CdrGenerator::CdrGenerator(CdrOptions options)
    : options_(options),
      rng_(options.seed),
      caller_dist_(options.num_callers, options.zipf_s) {
  // Pick the fraud cohort up front so ground truth is stable.
  uint64_t num_fraud = static_cast<uint64_t>(
      options_.fraud_fraction * static_cast<double>(options_.num_callers));
  while (fraud_callers_.size() < num_fraud) {
    fraud_callers_.insert(
        static_cast<int64_t>(rng_.Uniform(options_.num_callers)));
  }
}

bool CdrGenerator::IsFraudCaller(int64_t caller) const {
  return fraud_callers_.count(caller) > 0;
}

TupleRef CdrGenerator::Next() {
  carry_ += options_.mean_interarrival;
  int64_t advance = static_cast<int64_t>(carry_);
  carry_ -= static_cast<double>(advance);
  now_ += advance;

  int64_t origin = static_cast<int64_t>(caller_dist_.Next(rng_));
  int64_t dialed = static_cast<int64_t>(rng_.Uniform(options_.num_callers));
  bool fraud = IsFraudCaller(origin) && calls_generated_ >= options_.fraud_onset_call;
  ++calls_generated_;

  // Fraudulent callers: 5x duration, 10x international rate.
  double mean_dur =
      fraud ? options_.mean_duration_sec * 5.0 : options_.mean_duration_sec;
  int64_t duration =
      std::max<int64_t>(1, static_cast<int64_t>(rng_.Exponential(1.0 / mean_dur)));
  bool intl = rng_.Bernoulli(fraud ? std::min(1.0, options_.intl_prob * 10.0)
                                   : options_.intl_prob);
  bool tollfree = rng_.Bernoulli(options_.tollfree_prob);
  bool incomplete = rng_.Bernoulli(options_.incomplete_prob);

  return MakeTuple(now_, {Value(now_), Value(origin), Value(dialed),
                          Value(duration), Value(int64_t{intl}),
                          Value(int64_t{tollfree}), Value(int64_t{incomplete})});
}

// ---------------------------------------------------------------------------
// Packets
// ---------------------------------------------------------------------------

SchemaRef PacketSchema() {
  static const SchemaRef kSchema = MakeSchemaWithTs({
      {"ts", ValueType::kInt},
      {"src_ip", ValueType::kInt},
      {"dst_ip", ValueType::kInt},
      {"src_port", ValueType::kInt},
      {"dst_port", ValueType::kInt},
      {"protocol", ValueType::kInt},
      {"len", ValueType::kInt},
      {"is_syn", ValueType::kInt},
      {"is_ack", ValueType::kInt},
      {"payload", ValueType::kString},
  });
  return kSchema;
}

PacketGenerator::PacketGenerator(PacketOptions options)
    : options_(options),
      rng_(options.seed),
      host_dist_(options.num_hosts, options.zipf_s) {}

TupleRef PacketGenerator::MakePacket(int64_t src, int64_t dst, int64_t sport,
                                     int64_t dport, int64_t proto, int64_t len,
                                     bool syn, bool ack, std::string payload) {
  return MakeTuple(now_, {Value(now_), Value(src), Value(dst), Value(sport),
                          Value(dport), Value(proto), Value(len),
                          Value(int64_t{syn}), Value(int64_t{ack}),
                          Value(std::move(payload))});
}

TupleRef PacketGenerator::Next() {
  ++now_;

  // Due SYN-ACK replies take priority so RTTs are exact.
  if (!pending_acks_.empty() && pending_acks_.front().due <= now_) {
    PendingAck a = pending_acks_.front();
    pending_acks_.pop_front();
    return MakePacket(a.src, a.dst, a.sport, a.dport, kProtoTcp, 60,
                      /*syn=*/true, /*ack=*/true, "");
  }

  // Host addresses live in 10.0.0.0/8 to look like real taps.
  int64_t src = 0x0A000000 + static_cast<int64_t>(host_dist_.Next(rng_));
  int64_t dst = 0x0A000000 + static_cast<int64_t>(host_dist_.Next(rng_));
  bool tcp = rng_.Bernoulli(options_.tcp_fraction);
  int64_t proto = tcp ? kProtoTcp : kProtoUdp;
  bool p2p = rng_.Bernoulli(options_.p2p_fraction);
  bool known_port = p2p && rng_.Bernoulli(options_.p2p_on_known_port);

  int64_t sport = static_cast<int64_t>(1024 + rng_.Uniform(64000));
  int64_t dport = known_port
                      ? (rng_.Bernoulli(0.5) ? kKazaaPort : kGnutellaPort)
                      : static_cast<int64_t>(1024 + rng_.Uniform(64000));

  int64_t len = std::max<int64_t>(
      40, static_cast<int64_t>(rng_.Exponential(1.0 / options_.mean_payload_len)));

  std::string payload;
  if (p2p && !options_.p2p_keywords.empty()) {
    // Embed a protocol keyword mid-payload, as on the wire.
    const std::string& kw = options_.p2p_keywords[rng_.Uniform(
        options_.p2p_keywords.size())];
    payload = "....." + kw + "/1.0.....";
    ++true_p2p_packets_;
    true_p2p_bytes_ += static_cast<uint64_t>(len);
  }

  bool syn = tcp && !p2p && rng_.Bernoulli(options_.syn_prob);
  if (syn) {
    // Schedule the reply (endpoints reversed) after a random RTT.
    int64_t rtt = rng_.UniformRange(options_.min_rtt, options_.max_rtt);
    pending_acks_.push_back({now_ + rtt, dst, src, dport, sport});
    std::sort(pending_acks_.begin(), pending_acks_.end(),
              [](const PendingAck& a, const PendingAck& b) {
                return a.due < b.due;
              });
    return MakePacket(src, dst, sport, dport, kProtoTcp, 60, true, false, "");
  }

  return MakePacket(src, dst, sport, dport, proto, len, false, false,
                    std::move(payload));
}

// ---------------------------------------------------------------------------
// Sensors
// ---------------------------------------------------------------------------

SchemaRef SensorSchema() {
  static const SchemaRef kSchema = MakeSchemaWithTs({
      {"ts", ValueType::kInt},
      {"sensor_id", ValueType::kInt},
      {"temperature", ValueType::kDouble},
      {"humidity", ValueType::kDouble},
  });
  return kSchema;
}

SensorGenerator::SensorGenerator(SensorOptions options)
    : options_(options),
      rng_(options.seed),
      temperature_(options.num_sensors, options.base_temperature) {}

TupleRef SensorGenerator::Next() {
  uint64_t id = next_sensor_;
  next_sensor_ = (next_sensor_ + 1) % options_.num_sensors;
  if (id == 0) ++now_;

  double& temp = temperature_[id];
  temp += options_.walk_step * rng_.Gaussian();
  // Clamp to a plausible band so long runs stay realistic.
  temp = std::clamp(temp, options_.base_temperature - 30.0,
                    options_.base_temperature + 30.0);
  double humidity =
      std::clamp(50.0 - (temp - options_.base_temperature) * 1.5 +
                     rng_.Gaussian() * 2.0,
                 0.0, 100.0);

  return MakeTuple(now_, {Value(now_), Value(static_cast<int64_t>(id)),
                          Value(temp), Value(humidity)});
}

// ---------------------------------------------------------------------------
// Auctions
// ---------------------------------------------------------------------------

SchemaRef AuctionSchema() {
  static const SchemaRef kSchema = MakeSchemaWithTs({
      {"ts", ValueType::kInt},
      {"auction_id", ValueType::kInt},
      {"bidder", ValueType::kInt},
      {"amount", ValueType::kDouble},
  });
  return kSchema;
}

AuctionGenerator::AuctionGenerator(AuctionOptions options)
    : options_(options), rng_(options.seed) {
  for (uint64_t i = 0; i < options_.concurrent_auctions; ++i) OpenNewAuction();
}

void AuctionGenerator::OpenNewAuction() {
  OpenAuction a;
  a.id = next_auction_id_++;
  a.bids_left = options_.min_bids +
                rng_.Uniform(options_.max_bids - options_.min_bids + 1);
  a.current_price = 10.0 + rng_.NextDouble() * 90.0;
  open_.push_back(a);
}

Element AuctionGenerator::Next() {
  if (!ready_.empty()) {
    Element e = std::move(ready_.front());
    ready_.pop_front();
    return e;
  }
  ++now_;
  size_t idx = rng_.Uniform(open_.size());
  OpenAuction& a = open_[idx];
  a.current_price *= 1.0 + 0.02 * rng_.NextDouble();
  int64_t bidder = static_cast<int64_t>(rng_.Uniform(options_.num_bidders));
  Element bid(MakeTuple(
      now_, {Value(now_), Value(a.id), Value(bidder), Value(a.current_price)}));
  if (--a.bids_left == 0) {
    // Close the auction: punctuate, then replace it with a fresh one.
    ready_.push_back(Element(Punctuation::CloseKey(now_, Value(a.id))));
    open_.erase(open_.begin() + static_cast<ptrdiff_t>(idx));
    OpenNewAuction();
  }
  return bid;
}

}  // namespace gen
}  // namespace sqp
