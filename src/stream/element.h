#ifndef SQP_STREAM_ELEMENT_H_
#define SQP_STREAM_ELEMENT_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/tuple.h"

namespace sqp {

/// A punctuation [TMSF03]: an application-inserted marker asserting that no
/// future tuple will match its pattern. streamqp uses the two patterns that
/// cover the tutorial's use cases:
///  - a timestamp watermark ("no tuple with ts <= `ts` will arrive"), which
///    unblocks time windows and ordered aggregation;
///  - an optional key ("item `key` is closed"), enabling variable-length,
///    data-dependent windows such as the auction example on slide 28.
struct Punctuation {
  int64_t ts = 0;
  /// When set, closes only the partition/group identified by this key.
  bool has_key = false;
  Value key;

  static Punctuation Watermark(int64_t ts) { return Punctuation{ts, false, Value()}; }
  static Punctuation CloseKey(int64_t ts, Value key) {
    return Punctuation{ts, true, std::move(key)};
  }

  std::string ToString() const;
};

/// A stream element: either a data tuple or a punctuation. Operators
/// receive Elements; most forward punctuations downstream after exploiting
/// them (state purge, group close-out).
class Element {
 public:
  Element() : data_(TupleRef()) {}
  explicit Element(TupleRef tuple) : data_(std::move(tuple)) {}
  explicit Element(Punctuation punct) : data_(std::move(punct)) {}

  bool is_tuple() const { return data_.index() == 0 && std::get<0>(data_) != nullptr; }
  bool is_punctuation() const { return data_.index() == 1; }

  const TupleRef& tuple() const { return std::get<0>(data_); }
  const Punctuation& punctuation() const { return std::get<1>(data_); }

  /// Timestamp of the tuple or punctuation.
  int64_t ts() const {
    return is_punctuation() ? punctuation().ts : tuple()->ts();
  }

  /// Approximate footprint (queue accounting).
  size_t MemoryBytes() const {
    return is_tuple() ? tuple()->MemoryBytes() : sizeof(Punctuation);
  }

  std::string ToString() const;

 private:
  std::variant<TupleRef, Punctuation> data_;
};

}  // namespace sqp

#endif  // SQP_STREAM_ELEMENT_H_
