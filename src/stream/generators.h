#ifndef SQP_STREAM_GENERATORS_H_
#define SQP_STREAM_GENERATORS_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/schema.h"
#include "common/tuple.h"
#include "stream/element.h"

namespace sqp {
namespace gen {

// ---------------------------------------------------------------------------
// Call detail records (slides 6-8, Hancock / fraud detection).
// ---------------------------------------------------------------------------

/// CDR schema: ts*, origin, dialed, duration, is_intl, is_tollfree,
/// is_incomplete. `origin`/`dialed` are caller ids; durations in seconds.
SchemaRef CdrSchema();

/// Column indexes in CdrSchema(), kept in one place so examples/tests
/// don't scatter magic numbers.
struct CdrCols {
  static constexpr int kTs = 0;
  static constexpr int kOrigin = 1;
  static constexpr int kDialed = 2;
  static constexpr int kDuration = 3;
  static constexpr int kIsIntl = 4;
  static constexpr int kIsTollFree = 5;
  static constexpr int kIsIncomplete = 6;
};

struct CdrOptions {
  uint64_t num_callers = 10000;
  /// Zipf exponent of caller activity (0 = uniform).
  double zipf_s = 1.0;
  /// Fraction of callers exhibiting "fraud" behaviour: call durations and
  /// international rates far above their historical baseline.
  double fraud_fraction = 0.01;
  /// Call count after which the fraud cohort's behaviour switches on
  /// (0 = fraudulent from the first call). A nonzero onset gives
  /// signature-based detectors a clean history to learn from.
  uint64_t fraud_onset_call = 0;
  double mean_duration_sec = 180.0;
  double intl_prob = 0.03;
  double tollfree_prob = 0.10;
  double incomplete_prob = 0.02;
  /// Mean gap between consecutive calls, in ticks.
  double mean_interarrival = 1.0;
  uint64_t seed = 42;
};

/// Synthetic CDR stream. Substitutes for the AT&T long-distance feed
/// (~300M calls/day): same schema, Zipf caller skew, and an injected
/// fraud cohort so signature-based detection has ground truth.
class CdrGenerator {
 public:
  explicit CdrGenerator(CdrOptions options);

  /// Produces the next call record; timestamps are nondecreasing.
  TupleRef Next();

  /// Ground truth: whether `caller` is in the injected fraud cohort.
  bool IsFraudCaller(int64_t caller) const;

  const CdrOptions& options() const { return options_; }

 private:
  CdrOptions options_;
  Rng rng_;
  ZipfGenerator caller_dist_;
  std::unordered_set<int64_t> fraud_callers_;
  int64_t now_ = 0;
  double carry_ = 0.0;
  uint64_t calls_generated_ = 0;
};

// ---------------------------------------------------------------------------
// IP packets (slides 10-13, Gigascope workloads).
// ---------------------------------------------------------------------------

/// Packet schema: ts*, src_ip, dst_ip, src_port, dst_port, protocol, len,
/// is_syn, is_ack, payload.
SchemaRef PacketSchema();

struct PacketCols {
  static constexpr int kTs = 0;
  static constexpr int kSrcIp = 1;
  static constexpr int kDstIp = 2;
  static constexpr int kSrcPort = 3;
  static constexpr int kDstPort = 4;
  static constexpr int kProtocol = 5;
  static constexpr int kLen = 6;
  static constexpr int kIsSyn = 7;
  static constexpr int kIsAck = 8;
  static constexpr int kPayload = 9;
};

/// IANA-ish constants used by the example queries.
inline constexpr int64_t kProtoTcp = 6;
inline constexpr int64_t kProtoUdp = 17;
/// "Well-known" P2P ports (the NetFlow heuristic of slide 10).
inline constexpr int64_t kKazaaPort = 1214;
inline constexpr int64_t kGnutellaPort = 6346;

struct PacketOptions {
  uint64_t num_hosts = 1000;
  double zipf_s = 0.8;
  /// Fraction of generated packets that belong to P2P transfers.
  double p2p_fraction = 0.30;
  /// Of the P2P packets, the fraction still using a well-known P2P port.
  /// Slide 10's lesson: most P2P hides on other ports, so payload
  /// inspection finds ~3x what the port heuristic finds (1/3 here).
  double p2p_on_known_port = 1.0 / 3.0;
  /// Keywords embedded in P2P payloads (Gigascope matched on these).
  std::vector<std::string> p2p_keywords = {"X-Kazaa-", "GNUTELLA", "BitTorrent"};
  double tcp_fraction = 0.9;
  /// Probability a TCP packet opens a connection (SYN). Each SYN is
  /// answered by a SYN-ACK after a per-connection RTT.
  double syn_prob = 0.05;
  /// SYN-ACK delay (RTT) range in ticks.
  int64_t min_rtt = 2;
  int64_t max_rtt = 120;
  double mean_payload_len = 256.0;
  uint64_t seed = 7;
};

/// Synthetic packet stream standing in for a Gigascope tap on the AT&T IP
/// backbone: emits data packets, SYN packets and matching delayed SYN-ACKs
/// (reversed endpoints) so the slide-13 RTT join has real matches.
class PacketGenerator {
 public:
  explicit PacketGenerator(PacketOptions options);

  /// Produces the next packet; timestamps are nondecreasing.
  TupleRef Next();

  /// Ground truth counters for validating classifier experiments.
  uint64_t true_p2p_packets() const { return true_p2p_packets_; }
  uint64_t true_p2p_bytes() const { return true_p2p_bytes_; }

  const PacketOptions& options() const { return options_; }

 private:
  TupleRef MakePacket(int64_t src, int64_t dst, int64_t sport, int64_t dport,
                      int64_t proto, int64_t len, bool syn, bool ack,
                      std::string payload);

  PacketOptions options_;
  Rng rng_;
  ZipfGenerator host_dist_;
  int64_t now_ = 0;
  // Pending SYN-ACKs ordered by due time.
  struct PendingAck {
    int64_t due;
    int64_t src, dst, sport, dport;
  };
  std::deque<PendingAck> pending_acks_;
  uint64_t true_p2p_packets_ = 0;
  uint64_t true_p2p_bytes_ = 0;
};

// ---------------------------------------------------------------------------
// Sensor measurements (slide 3, measurement streams).
// ---------------------------------------------------------------------------

/// Sensor schema: ts*, sensor_id, temperature, humidity.
SchemaRef SensorSchema();

struct SensorCols {
  static constexpr int kTs = 0;
  static constexpr int kSensorId = 1;
  static constexpr int kTemperature = 2;
  static constexpr int kHumidity = 3;
};

struct SensorOptions {
  uint64_t num_sensors = 100;
  double base_temperature = 20.0;
  double walk_step = 0.1;
  uint64_t seed = 13;
};

/// Round-robin sensor readings; per-sensor temperature is a bounded
/// random walk, humidity is noisy-correlated with temperature.
class SensorGenerator {
 public:
  explicit SensorGenerator(SensorOptions options);

  TupleRef Next();

 private:
  SensorOptions options_;
  Rng rng_;
  std::vector<double> temperature_;
  uint64_t next_sensor_ = 0;
  int64_t now_ = 0;
};

// ---------------------------------------------------------------------------
// Auction bids with punctuations (slide 28).
// ---------------------------------------------------------------------------

/// Bid schema: ts*, auction_id, bidder, amount.
SchemaRef AuctionSchema();

struct AuctionCols {
  static constexpr int kTs = 0;
  static constexpr int kAuctionId = 1;
  static constexpr int kBidder = 2;
  static constexpr int kAmount = 3;
};

struct AuctionOptions {
  uint64_t concurrent_auctions = 8;
  /// Bids per auction before it closes (uniform in [min,max]).
  uint64_t min_bids = 3;
  uint64_t max_bids = 12;
  uint64_t num_bidders = 500;
  uint64_t seed = 99;
};

/// Emits bid tuples interleaved across open auctions; when an auction
/// receives its last bid the generator emits a CloseKey punctuation for
/// that auction id — the data-dependent variable-length window of
/// slide 28.
class AuctionGenerator {
 public:
  explicit AuctionGenerator(AuctionOptions options);

  /// Next element: a bid tuple or an auction-close punctuation.
  Element Next();

 private:
  struct OpenAuction {
    int64_t id;
    uint64_t bids_left;
    double current_price;
  };

  void OpenNewAuction();

  AuctionOptions options_;
  Rng rng_;
  std::vector<OpenAuction> open_;
  int64_t next_auction_id_ = 1;
  int64_t now_ = 0;
  std::deque<Element> ready_;
};

}  // namespace gen
}  // namespace sqp

#endif  // SQP_STREAM_GENERATORS_H_
