#ifndef SQP_OPT_MEMORY_BOUND_H_
#define SQP_OPT_MEMORY_BOUND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "agg/aggregate_fn.h"

namespace sqp {

/// Domain metadata for one attribute, as known to the analyzer. A field
/// is *bounded* when its value domain is finite and small enough to
/// enumerate (protocol numbers, ports, flag bits); timestamps and free
/// strings are unbounded.
struct FieldDomain {
  std::string name;
  bool bounded = false;
  /// Domain cardinality when bounded (upper bound on groups).
  uint64_t size = 0;
};

/// Description of a single-stream aggregate query for the [ABB+02]
/// bounded-memory test (slide 35).
struct AggQueryDesc {
  /// Domains of the grouping attributes (after applying WHERE-clause
  /// range restrictions, which can bound an otherwise unbounded field —
  /// slide 36's `length > 512 and length < 1024` example).
  std::vector<FieldDomain> group_domains;
  /// Aggregate kinds and whether each runs over an unbounded attribute.
  struct AggInput {
    AggKind kind = AggKind::kCount;
    bool input_bounded = false;
  };
  std::vector<AggInput> aggs;
  /// True when grouping includes a window expression on the ordering
  /// attribute (e.g. time/60): only O(1) buckets are ever open at once.
  bool windowed_by_ordering = false;
};

enum class MemoryVerdict { kBounded, kUnbounded };

struct MemoryAnalysis {
  MemoryVerdict verdict = MemoryVerdict::kUnbounded;
  /// Upper bound on simultaneously live groups (when bounded).
  uint64_t max_groups = 0;
  std::string explanation;
};

/// Applies the [ABB+02] criteria: the query runs in bounded memory iff
/// every grouping attribute is bounded (within a window, the ordering-
/// attribute bucket counts as bounded) and no holistic aggregate runs
/// over an unbounded attribute.
MemoryAnalysis AnalyzeAggregateQuery(const AggQueryDesc& desc);

}  // namespace sqp

#endif  // SQP_OPT_MEMORY_BOUND_H_
