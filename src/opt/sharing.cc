#include "opt/sharing.h"

#include <algorithm>
#include <cassert>

namespace sqp {

int SharedRangeFilter::AddRange(double lo, double hi) {
  int id = static_cast<int>(ranges_.size());
  ranges_.push_back(Range{lo, hi, id});
  root_.reset();
  return id;
}

void SharedRangeFilter::Build() { root_ = BuildNode(ranges_); }

std::unique_ptr<SharedRangeFilter::Node> SharedRangeFilter::BuildNode(
    std::vector<Range> ranges) {
  if (ranges.empty()) return nullptr;
  // Center = median of endpoints.
  std::vector<double> endpoints;
  endpoints.reserve(ranges.size() * 2);
  for (const Range& r : ranges) {
    endpoints.push_back(r.lo);
    endpoints.push_back(r.hi);
  }
  std::nth_element(endpoints.begin(),
                   endpoints.begin() + static_cast<ptrdiff_t>(endpoints.size() / 2),
                   endpoints.end());
  double center = endpoints[endpoints.size() / 2];

  auto node = std::make_unique<Node>();
  node->center = center;
  std::vector<Range> left, right;
  for (const Range& r : ranges) {
    if (r.hi < center) {
      left.push_back(r);
    } else if (r.lo > center) {
      right.push_back(r);
    } else {
      node->by_lo.push_back(r);
    }
  }
  node->by_hi = node->by_lo;
  std::sort(node->by_lo.begin(), node->by_lo.end(),
            [](const Range& a, const Range& b) { return a.lo < b.lo; });
  std::sort(node->by_hi.begin(), node->by_hi.end(),
            [](const Range& a, const Range& b) { return a.hi > b.hi; });
  // Guard against degenerate splits (all ranges stabbing the center).
  if (left.size() < ranges.size()) node->left = BuildNode(std::move(left));
  if (right.size() < ranges.size()) node->right = BuildNode(std::move(right));
  return node;
}

void SharedRangeFilter::MatchNode(const Node* node, double x,
                                  std::vector<int>* out) const {
  if (node == nullptr) return;
  if (x < node->center) {
    for (const Range& r : node->by_lo) {
      if (r.lo > x) break;
      out->push_back(r.id);
    }
    MatchNode(node->left.get(), x, out);
  } else if (x > node->center) {
    for (const Range& r : node->by_hi) {
      if (r.hi < x) break;
      out->push_back(r.id);
    }
    MatchNode(node->right.get(), x, out);
  } else {
    for (const Range& r : node->by_lo) out->push_back(r.id);
  }
}

std::vector<int> SharedRangeFilter::Match(double x) const {
  assert(root_ != nullptr && "call Build() first");
  std::vector<int> out;
  MatchNode(root_.get(), x, &out);
  return out;
}

std::vector<int> SharedRangeFilter::MatchNaive(double x) const {
  std::vector<int> out;
  for (const Range& r : ranges_) {
    if (r.lo <= x && x <= r.hi) out.push_back(r.id);
  }
  return out;
}

SharedWindowJoin::SharedWindowJoin(std::vector<int64_t> windows,
                                   std::vector<int> left_cols,
                                   std::vector<int> right_cols)
    : windows_(std::move(windows)),
      max_window_(windows_.empty()
                      ? 1
                      : *std::max_element(windows_.begin(), windows_.end())),
      key_cols_{std::move(left_cols), std::move(right_cols)},
      buf_{TimeWindowBuffer(max_window_), TimeWindowBuffer(max_window_)},
      results_(windows_.size(), 0) {}

void SharedWindowJoin::Push(int side, const TupleRef& t) {
  int other = 1 - side;
  Key key = ExtractKey(*t, key_cols_[side]);

  // Probe the opposite hash index (shared across all queries).
  ++probes_;
  auto it = index_[other].find(key);
  if (it != index_[other].end()) {
    int64_t bound = buf_[other].now() - max_window_;
    for (const TupleRef& match : it->second) {
      if (match->ts() <= bound) continue;  // Lazily expired.
      int64_t gap = std::llabs(t->ts() - match->ts());
      // Attribute to each query whose window admits this pair. Window
      // semantics follow TimeWindowBuffer: (now - w, now], i.e. gap < w.
      for (size_t q = 0; q < windows_.size(); ++q) {
        if (gap < windows_[q]) ++results_[q];
      }
    }
  }

  // Insert into this side's max-window buffer + index.
  std::vector<TupleRef> expired;
  buf_[side].Insert(t, &expired);
  index_[side][std::move(key)].push_back(t);
  for (const TupleRef& x : expired) {
    Key xkey = ExtractKey(*x, key_cols_[side]);
    auto xit = index_[side].find(xkey);
    if (xit == index_[side].end()) continue;
    auto& vec = xit->second;
    for (auto vit = vec.begin(); vit != vec.end(); ++vit) {
      if (vit->get() == x.get()) {
        vec.erase(vit);
        break;
      }
    }
    if (vec.empty()) index_[side].erase(xit);
  }
}

size_t SharedWindowJoin::StateBytes() const {
  size_t bytes = sizeof(*this);
  for (int s = 0; s < 2; ++s) {
    bytes += buf_[s].MemoryBytes();
    bytes += index_[s].size() * 48;
  }
  return bytes;
}

}  // namespace sqp
