#include "opt/rate_model.h"

#include <algorithm>

namespace sqp {

double PipelineOutputRate(double input_rate,
                          const std::vector<RatedStage>& stages) {
  double rate = input_rate;
  for (const RatedStage& s : stages) {
    rate = std::min(rate, s.service_rate) * s.selectivity;
  }
  return rate;
}

double PipelineWork(double input_rate, const std::vector<RatedStage>& stages) {
  double rate = input_rate;
  double work = 0.0;
  for (const RatedStage& s : stages) {
    double processed = std::min(rate, s.service_rate);
    work += processed * s.CostPerTuple();
    rate = processed * s.selectivity;
  }
  return work;
}

double JoinOutputRate(double r1, double r2, const RatedJoin& join) {
  return join.selectivity * r1 * r2 * (join.window1 + join.window2);
}

}  // namespace sqp
