#ifndef SQP_OPT_RATE_OPTIMIZER_H_
#define SQP_OPT_RATE_OPTIMIZER_H_

#include <string>
#include <vector>

#include "opt/rate_model.h"

namespace sqp {

/// Result of an ordering search.
struct OrderingPlan {
  std::vector<size_t> order;  // Stage indexes, execution order.
  double output_rate = 0.0;
  double work = 0.0;
};

/// Rate-based ordering of commutable filters [VN02]: returns the stage
/// order maximizing output rate (exhaustive for <= 8 stages, otherwise a
/// rank heuristic). The tutorial's point (slide 41): this can differ from
/// the least-work order when a slow operator throttles the stream.
OrderingPlan MaximizeOutputRate(double input_rate,
                                const std::vector<RatedStage>& stages);

/// Classic cost-based ordering: minimizes total work (rank ordering by
/// (1 - selectivity)/cost, which is optimal for unthrottled pipelines).
OrderingPlan MinimizeWork(double input_rate,
                          const std::vector<RatedStage>& stages);

/// A left-deep join-tree search over N streams maximizing output rate.
struct JoinTreePlan {
  std::vector<size_t> order;  // Stream join order (first two join first).
  double output_rate = 0.0;
};

/// `rates[i]`: stream i's rate. `sel[i][j]`: pairwise join selectivity.
/// `window`: common window length used for every join. Exhaustive for
/// N <= 7.
JoinTreePlan BestJoinOrder(const std::vector<double>& rates,
                           const std::vector<std::vector<double>>& sel,
                           double window);

}  // namespace sqp

#endif  // SQP_OPT_RATE_OPTIMIZER_H_
