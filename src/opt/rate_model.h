#ifndef SQP_OPT_RATE_MODEL_H_
#define SQP_OPT_RATE_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sqp {

/// Rate model of one pipeline stage (filter/map) for rate-based
/// optimization [VN02] (slides 40-41): the stage forwards
/// min(input_rate, service_rate) * selectivity tuples per second.
/// A "very fast op" has service_rate = +infinity.
struct RatedStage {
  std::string name;
  double selectivity = 1.0;
  /// Max tuples/sec the stage can process.
  double service_rate = 1e18;
  /// Per-tuple cost in seconds (= 1/service_rate); kept separately so
  /// classic cost-based ranking is expressible.
  double CostPerTuple() const {
    return service_rate <= 0 ? 1e18 : 1.0 / service_rate;
  }
};

/// Output rate of `input_rate` pushed through the stages in order.
double PipelineOutputRate(double input_rate,
                          const std::vector<RatedStage>& stages);

/// Total work (seconds of processing per second of stream) the pipeline
/// performs — the classic cost objective, for contrast with rate.
double PipelineWork(double input_rate, const std::vector<RatedStage>& stages);

/// Rate model of a sliding-window equijoin [KNV03/VN02]: with input
/// rates r1, r2, windows w1, w2 (time units) and match selectivity f,
/// output rate = f * (r1 * r2 * w2 + r2 * r1 * w1) = f * r1 * r2 * (w1+w2).
struct RatedJoin {
  double selectivity = 0.01;
  double window1 = 1.0;
  double window2 = 1.0;
};

double JoinOutputRate(double r1, double r2, const RatedJoin& join);

}  // namespace sqp

#endif  // SQP_OPT_RATE_MODEL_H_
