#include "opt/rate_optimizer.h"

#include <algorithm>
#include <numeric>

namespace sqp {

namespace {

std::vector<RatedStage> Reorder(const std::vector<RatedStage>& stages,
                                const std::vector<size_t>& order) {
  std::vector<RatedStage> out;
  out.reserve(order.size());
  for (size_t i : order) out.push_back(stages[i]);
  return out;
}

}  // namespace

OrderingPlan MaximizeOutputRate(double input_rate,
                                const std::vector<RatedStage>& stages) {
  OrderingPlan best;
  std::vector<size_t> order(stages.size());
  std::iota(order.begin(), order.end(), 0);

  if (stages.size() <= 8) {
    std::vector<size_t> perm = order;
    std::sort(perm.begin(), perm.end());
    do {
      double rate = PipelineOutputRate(input_rate, Reorder(stages, perm));
      if (rate > best.output_rate) {
        best.output_rate = rate;
        best.order = perm;
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
  } else {
    // Heuristic: fast, selective stages first (high service rate breaks
    // ties toward not throttling the stream early).
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      double ka = stages[a].selectivity / std::min(stages[a].service_rate, 1e18);
      double kb = stages[b].selectivity / std::min(stages[b].service_rate, 1e18);
      if (ka != kb) return ka < kb;
      return stages[a].service_rate > stages[b].service_rate;
    });
    best.order = order;
    best.output_rate = PipelineOutputRate(input_rate, Reorder(stages, order));
  }
  best.work = PipelineWork(input_rate, Reorder(stages, best.order));
  return best;
}

OrderingPlan MinimizeWork(double input_rate,
                          const std::vector<RatedStage>& stages) {
  OrderingPlan plan;
  plan.order.resize(stages.size());
  std::iota(plan.order.begin(), plan.order.end(), 0);
  // Rank ordering: (1 - sel) / cost descending (most filtering per unit
  // cost first) — the textbook least-work order for commuting filters.
  std::sort(plan.order.begin(), plan.order.end(), [&](size_t a, size_t b) {
    double ra = (1.0 - stages[a].selectivity) / stages[a].CostPerTuple();
    double rb = (1.0 - stages[b].selectivity) / stages[b].CostPerTuple();
    return ra > rb;
  });
  plan.output_rate = PipelineOutputRate(input_rate, Reorder(stages, plan.order));
  plan.work = PipelineWork(input_rate, Reorder(stages, plan.order));
  return plan;
}

JoinTreePlan BestJoinOrder(const std::vector<double>& rates,
                           const std::vector<std::vector<double>>& sel,
                           double window) {
  JoinTreePlan best;
  size_t n = rates.size();
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);

  auto evaluate = [&](const std::vector<size_t>& order) {
    // Left-deep: result rate of the running join, joined with the next
    // stream. Selectivity between a partial result and stream j is the
    // product of sel[i][j] over i already joined (independence).
    double rate = rates[order[0]];
    std::vector<size_t> joined = {order[0]};
    for (size_t k = 1; k < n; ++k) {
      size_t j = order[k];
      double s = 1.0;
      for (size_t i : joined) s *= sel[i][j];
      RatedJoin join{s, window, window};
      rate = JoinOutputRate(rate, rates[j], join);
      joined.push_back(j);
    }
    return rate;
  };

  do {
    double rate = evaluate(perm);
    if (rate > best.output_rate) {
      best.output_rate = rate;
      best.order = perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

}  // namespace sqp
