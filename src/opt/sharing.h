#ifndef SQP_OPT_SHARING_H_
#define SQP_OPT_SHARING_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/tuple.h"
#include "common/value.h"
#include "window/time_window.h"

namespace sqp {

/// Shared evaluation of many range predicates over one numeric column
/// (slide 45: "sharing between select/project expressions"). Instead of
/// testing N predicates per tuple, an interval tree answers "which
/// queries match value v" in O(log N + answers).
class SharedRangeFilter {
 public:
  SharedRangeFilter() = default;

  /// Registers predicate lo <= x <= hi; returns the query id.
  int AddRange(double lo, double hi);

  /// Builds the index; call after all AddRange calls.
  void Build();

  /// Query ids whose range contains x.
  std::vector<int> Match(double x) const;

  /// Naive baseline for benchmarking: scan all predicates.
  std::vector<int> MatchNaive(double x) const;

  size_t num_queries() const { return ranges_.size(); }

 private:
  struct Range {
    double lo, hi;
    int id;
  };
  struct Node {
    double center;
    std::vector<Range> by_lo;  // Ranges containing center, sorted by lo.
    std::vector<Range> by_hi;  // Same ranges, sorted by hi descending.
    std::unique_ptr<Node> left, right;
  };

  std::unique_ptr<Node> BuildNode(std::vector<Range> ranges);
  void MatchNode(const Node* node, double x, std::vector<int>* out) const;

  std::vector<Range> ranges_;
  std::unique_ptr<Node> root_;
};

/// Shared sliding-window join (slide 45, [HFAE03]): M queries join the
/// same two streams on the same key but with different window lengths.
/// One operator maintains the *largest* window; each result pair is
/// attributed to every query whose window admits it (|ts1 - ts2| <= w_q).
class SharedWindowJoin {
 public:
  /// `windows[q]` is query q's window length (time units).
  SharedWindowJoin(std::vector<int64_t> windows, std::vector<int> left_cols,
                   std::vector<int> right_cols);

  /// Feeds a tuple into side 0 (left) or 1 (right); per-query match
  /// counts accumulate in results().
  void Push(int side, const TupleRef& t);

  const std::vector<uint64_t>& results() const { return results_; }
  uint64_t probes() const { return probes_; }
  size_t StateBytes() const;

 private:
  std::vector<int64_t> windows_;
  int64_t max_window_;
  std::vector<int> key_cols_[2];
  TimeWindowBuffer buf_[2];
  std::unordered_map<Key, std::vector<TupleRef>, KeyHash> index_[2];
  std::vector<uint64_t> results_;
  uint64_t probes_ = 0;
};

}  // namespace sqp

#endif  // SQP_OPT_SHARING_H_
