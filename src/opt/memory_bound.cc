#include "opt/memory_bound.h"

namespace sqp {

MemoryAnalysis AnalyzeAggregateQuery(const AggQueryDesc& desc) {
  MemoryAnalysis out;
  out.max_groups = 1;

  for (const FieldDomain& d : desc.group_domains) {
    if (!d.bounded) {
      out.verdict = MemoryVerdict::kUnbounded;
      out.explanation =
          "grouping attribute '" + d.name + "' has an unbounded domain";
      return out;
    }
    // Saturating multiply.
    if (d.size != 0 && out.max_groups > UINT64_MAX / d.size) {
      out.max_groups = UINT64_MAX;
    } else {
      out.max_groups *= d.size == 0 ? 1 : d.size;
    }
  }

  for (const AggQueryDesc::AggInput& a : desc.aggs) {
    if (ClassOf(a.kind) == AggClass::kHolistic && !a.input_bounded) {
      out.verdict = MemoryVerdict::kUnbounded;
      out.explanation = std::string("holistic aggregate ") +
                        AggKindName(a.kind) +
                        " over an unbounded attribute requires state "
                        "proportional to the stream";
      return out;
    }
  }

  // With a window over the ordering attribute, at most O(1) buckets are
  // simultaneously open; without one, the bound still holds because all
  // grouping domains are finite.
  out.verdict = MemoryVerdict::kBounded;
  out.explanation =
      desc.windowed_by_ordering
          ? "all grouping attributes bounded within the ordering window; "
            "no holistic aggregate on an unbounded attribute"
          : "all grouping attributes bounded; no holistic aggregate on an "
            "unbounded attribute";
  return out;
}

}  // namespace sqp
