#include "cql/planner.h"

#include <algorithm>

#include "cql/parser.h"
#include "exec/aggregate_op.h"
#include "exec/partitioned_window_agg.h"
#include "exec/project.h"
#include "exec/select.h"
#include "exec/sym_hash_join.h"
#include "exec/window_agg.h"
#include "exec/window_join.h"

namespace sqp {
namespace cql {

namespace {

ExprRef AndAll(const std::vector<ExprRef>& conjuncts) {
  ExprRef e;
  for (const ExprRef& c : conjuncts) {
    e = (e == nullptr) ? c : And(e, c);
  }
  return e;
}

/// Lowers an AST expression over the *output layout* of a grouped
/// aggregation [ts, keys..., aggs...]:
///  - aggregate calls map to their agg column,
///  - group-key identifiers map to their key column,
///  - the `ordering/K` window expression maps to ts/K,
///  - constants pass through.
class GroupOutputLowering {
 public:
  GroupOutputLowering(const AnalyzedQuery& aq,
                      const std::vector<std::string>& aliases,
                      const std::vector<SchemaRef>& schemas)
      : aq_(aq), aliases_(aliases), schemas_(schemas) {}

  Result<ExprRef> Lower(const AstExprRef& e) {
    // GROUP BY aliases (`group by ts/60 as tb` ... `select tb`) resolve
    // to their defining expression.
    if (e->kind == AstExpr::Kind::kIdent && e->qualifier.empty()) {
      for (const SelectItem& g : aq_.ast.group_by) {
        if (!g.alias.empty() && g.alias == e->name) {
          return Lower(g.expr);
        }
      }
    }
    switch (e->kind) {
      case AstExpr::Kind::kConst:
        return Lit(e->value);
      case AstExpr::Kind::kCall: {
        if (!ParseAggKind(e->fn).ok()) {
          return Status::Unimplemented(
              "scalar function over aggregate output: " + e->fn);
        }
        std::string text = e->ToString();
        for (size_t i = 0; i < aq_.aggs.size(); ++i) {
          if (aq_.aggs[i].text == text) {
            return Col(static_cast<int>(1 + aq_.group_cols.size() + i));
          }
        }
        return Status::Internal("aggregate not collected: " + text);
      }
      case AstExpr::Kind::kIdent: {
        auto idx = ResolveCombined(e);
        if (!idx.ok()) return idx.status();
        for (size_t k = 0; k < aq_.group_cols.size(); ++k) {
          if (aq_.group_cols[k] == *idx) return Col(static_cast<int>(1 + k));
        }
        return Status::InvalidArgument(
            "column not in GROUP BY: " + e->ToString());
      }
      case AstExpr::Kind::kBinary: {
        // The window expression ordering/K -> ts/K over output ts.
        if (IsTumblingExpr(e)) {
          return Div(Col(0), Lit(aq_.tumbling_size));
        }
        auto l = Lower(e->lhs);
        if (!l.ok()) return l;
        auto r = Lower(e->rhs);
        if (!r.ok()) return r;
        return Bin(e->op, std::move(*l), std::move(*r));
      }
      case AstExpr::Kind::kNot: {
        auto c = Lower(e->child);
        if (!c.ok()) return c;
        return Not(std::move(*c));
      }
      case AstExpr::Kind::kStar:
        return Status::InvalidArgument("'*' outside count(*)");
    }
    return Status::Internal("unhandled AST node");
  }

  bool IsTumblingExpr(const AstExprRef& e) const {
    if (aq_.tumbling_size <= 0) return false;
    if (e->kind != AstExpr::Kind::kBinary || e->op != BinOp::kDiv) return false;
    if (e->lhs->kind != AstExpr::Kind::kIdent ||
        e->rhs->kind != AstExpr::Kind::kConst) {
      return false;
    }
    return e->rhs->value.type() == ValueType::kInt &&
           e->rhs->value.AsInt() == aq_.tumbling_size;
  }

 private:
  Result<int> ResolveCombined(const AstExprRef& e) {
    auto lowered = LowerExpr(e, aliases_, schemas_, aq_.stream_offset);
    if (!lowered.ok()) return lowered.status();
    // Ask the lowered expression for its ordinal directly; the old
    // ToString round-trip ("$i" + std::stoi) could throw out of a
    // network-reachable path instead of returning a plan error.
    if ((*lowered)->kind() != ExprKind::kColumn) {
      return Status::Internal("expected column expression");
    }
    return (*lowered)->column_index();
  }

  const AnalyzedQuery& aq_;
  const std::vector<std::string>& aliases_;
  const std::vector<SchemaRef>& schemas_;
};

std::string DeriveName(const SelectItem& item, size_t i) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == AstExpr::Kind::kIdent) return item.expr->name;
  if (item.expr->kind == AstExpr::Kind::kCall) return item.expr->fn;
  return "f" + std::to_string(i);
}

}  // namespace

void CompiledQuery::Finish() {
  // One flush per input port: binary operators (joins) forward a single
  // downstream flush only after hearing from both ports.
  for (Operator* in : inputs_) in->Flush();
}

Result<std::unique_ptr<CompiledQuery>> Compile(const std::string& text,
                                               const Catalog& catalog) {
  auto parsed = Parse(text);
  if (!parsed.ok()) return parsed.status();
  auto analyzed = Analyze(*parsed, catalog);
  if (!analyzed.ok()) return analyzed.status();
  AnalyzedQuery& aq = *analyzed;
  const Query& q = aq.ast;

  std::vector<std::string> aliases;
  std::vector<SchemaRef> schemas;
  for (size_t i = 0; i < q.from.size(); ++i) {
    aliases.push_back(q.from[i].alias);
    schemas.push_back(aq.entries[i]->schema);
  }

  auto cq = std::make_unique<CompiledQuery>();
  cq->memory_ = aq.memory;
  std::string desc;

  // --- Input side: per-stream filters, then (maybe) the join. ---
  Operator* combined_head = nullptr;  // First op seeing the combined layout.

  if (aq.num_streams == 1) {
    ExprRef filter = AndAll(aq.left_only);
    if (filter != nullptr) {
      SelectOp* sel = cq->plan_.Make<SelectOp>(filter);
      cq->inputs_.push_back(sel);
      cq->ports_.push_back(0);
      combined_head = sel;
      desc += "select -> ";
    }
  } else {
    // Pre-filters push selection below the join (classic pushdown).
    Operator* pre[2] = {nullptr, nullptr};
    ExprRef lf = AndAll(aq.left_only);
    ExprRef rf = AndAll(aq.right_only);
    if (lf != nullptr) pre[0] = cq->plan_.Make<SelectOp>(lf, "select-left");
    if (rf != nullptr) pre[1] = cq->plan_.Make<SelectOp>(rf, "select-right");

    Operator* join = nullptr;
    bool w0 = q.from[0].window.has_value();
    bool w1 = q.from[1].window.has_value();
    if (w0 != w1) {
      return Status::InvalidArgument(
          "either both join inputs must be windowed or neither");
    }
    // Join columns: left side indexes are combined (= stream-0 local).
    std::vector<int> lcols = aq.join_left_cols;
    std::vector<int> rcols = aq.join_right_cols;
    if (w0) {
      BinaryWindowJoinOp::Options opt;
      opt.left_cols = lcols;
      opt.right_cols = rcols;
      opt.left_window = *q.from[0].window;
      opt.right_window = *q.from[1].window;
      join = cq->plan_.Make<BinaryWindowJoinOp>(opt);
      desc += "window-join -> ";
    } else {
      join = cq->plan_.Make<SymmetricHashJoinOp>(lcols, rcols);
      desc += "sym-hash-join -> ";
    }
    for (int s = 0; s < 2; ++s) {
      if (pre[s] != nullptr) {
        pre[s]->SetOutput(join, s);
        cq->inputs_.push_back(pre[s]);
        cq->ports_.push_back(0);
      } else {
        cq->inputs_.push_back(join);
        cq->ports_.push_back(s);
      }
    }
    combined_head = join;
    ExprRef residual = AndAll(aq.residual);
    if (residual != nullptr) {
      SelectOp* post = cq->plan_.Make<SelectOp>(residual, "select-residual");
      join->SetOutput(post);
      combined_head = post;
      desc += "select -> ";
    }
  }

  // Helper to append an operator to the current chain tail.
  Operator* tail = combined_head;
  auto append = [&](Operator* op) {
    if (tail != nullptr) {
      tail->SetOutput(op);
    } else {
      cq->inputs_.push_back(op);
      cq->ports_.push_back(0);
    }
    tail = op;
  };

  // --- Aggregation / projection tail. ---
  if (aq.has_aggregates || aq.has_group_by) {
    if (aq.num_streams == 1 && aq.has_group_by &&
        !q.from[0].partition_by.empty()) {
      return Status::Unimplemented(
          "combining GROUP BY with a [partition by ...] window is not "
          "supported; partitioned windows already group per key");
    }
    bool partitioned = aq.num_streams == 1 && !aq.has_group_by &&
                       q.from[0].window.has_value() &&
                       !q.from[0].partition_by.empty();
    bool sliding = aq.num_streams == 1 && !aq.has_group_by &&
                   q.from[0].window.has_value() && !partitioned;
    Schema mid_schema;
    GroupOutputLowering lower(aq, aliases, schemas);

    // Result type of an aggregate over the input schema.
    auto agg_type = [&](const AggSpec& s) {
      switch (s.kind) {
        case AggKind::kCount:
        case AggKind::kCountDistinct:
        case AggKind::kApproxCountDistinct:
          return ValueType::kInt;
        case AggKind::kAvg:
        case AggKind::kStddev:
        case AggKind::kMedian:
        case AggKind::kApproxMedian:
        case AggKind::kBlend:
          return ValueType::kDouble;
        default:
          return s.input_col >= 0
                     ? aq.combined.field(static_cast<size_t>(s.input_col)).type
                     : ValueType::kInt;
      }
    };

    if (partitioned) {
      // `[partition by K rows N]`: per-key sliding aggregate.
      int key_col = schemas[0]->FieldIndex(q.from[0].partition_by);
      if (key_col < 0) {
        return Status::NotFound("unknown partition column: " +
                                q.from[0].partition_by);
      }
      std::vector<AggSpec> specs;
      for (const ResolvedAgg& a : aq.aggs) specs.push_back(a.spec);
      auto* pwa = cq->plan_.Make<PartitionedWindowAggregateOp>(
          key_col, static_cast<size_t>(q.from[0].window->size), specs);
      append(pwa);
      desc += "partitioned-window-agg -> ";

      // Output layout: [ts, key, aggs...].
      std::vector<Field> mid_fields = {
          {"ts", ValueType::kInt},
          schemas[0]->field(static_cast<size_t>(key_col))};
      for (size_t a = 0; a < aq.aggs.size(); ++a) {
        mid_fields.push_back({aq.aggs[a].text, agg_type(aq.aggs[a].spec)});
      }
      mid_schema = Schema(std::move(mid_fields));

      std::vector<ExprRef> post;
      std::vector<std::string> names;
      for (size_t i = 0; i < q.select.size(); ++i) {
        const SelectItem& item = q.select[i];
        names.push_back(DeriveName(item, i));
        if (item.expr->kind == AstExpr::Kind::kIdent &&
            item.expr->name == q.from[0].partition_by) {
          post.push_back(Col(1));
        } else if (item.expr->kind == AstExpr::Kind::kIdent &&
                   schemas[0]->has_ordering() &&
                   schemas[0]->FieldIndex(item.expr->name) ==
                       schemas[0]->ordering_index()) {
          post.push_back(Col(0));
        } else if (item.expr->kind == AstExpr::Kind::kCall) {
          std::string text = item.expr->ToString();
          bool found = false;
          for (size_t a = 0; a < aq.aggs.size(); ++a) {
            if (aq.aggs[a].text == text) {
              post.push_back(Col(static_cast<int>(2 + a)));
              found = true;
              break;
            }
          }
          if (!found) return Status::Internal("aggregate not found: " + text);
        } else {
          return Status::Unimplemented(
              "partitioned-window SELECT items must be the partition "
              "column, the ordering attribute, or aggregates");
        }
      }
      auto* proj = cq->plan_.Make<ProjectOp>(post, "project-out");
      append(proj);
      desc += "project";
      std::vector<Field> out_fields;
      for (size_t i = 0; i < post.size(); ++i) {
        auto type = post[i]->Check(mid_schema);
        if (!type.ok()) return type.status();
        out_fields.push_back({names[i], *type});
      }
      cq->output_schema_ = Schema(std::move(out_fields));
    } else if (sliding) {
      // Sliding-window aggregate over the stream's [RANGE/ROWS] window.
      std::vector<AggSpec> specs;
      for (const ResolvedAgg& a : aq.aggs) specs.push_back(a.spec);
      auto* wagg =
          cq->plan_.Make<WindowAggregateOp>(*q.from[0].window, specs);
      append(wagg);
      desc += "window-agg -> ";
      // Output layout: [ts, aggs...]. Lower select items against it.
      std::vector<Field> mid_fields = {{"ts", ValueType::kInt}};
      for (const ResolvedAgg& a : aq.aggs) {
        mid_fields.push_back({a.text, ValueType::kDouble});
      }
      mid_schema = Schema(std::move(mid_fields));
      std::vector<ExprRef> post;
      std::vector<std::string> names;
      for (size_t i = 0; i < q.select.size(); ++i) {
        const SelectItem& item = q.select[i];
        names.push_back(DeriveName(item, i));
        if (item.expr->kind == AstExpr::Kind::kCall) {
          std::string t = item.expr->ToString();
          bool found = false;
          for (size_t a = 0; a < aq.aggs.size(); ++a) {
            if (aq.aggs[a].text == t) {
              post.push_back(Col(static_cast<int>(1 + a)));
              found = true;
              break;
            }
          }
          if (!found) {
            return Status::Internal("aggregate not found: " + t);
          }
        } else if (item.expr->kind == AstExpr::Kind::kIdent &&
                   schemas[0]->has_ordering() &&
                   schemas[0]->FieldIndex(item.expr->name) ==
                       schemas[0]->ordering_index()) {
          post.push_back(Col(0));
        } else {
          return Status::Unimplemented(
              "windowed aggregate SELECT items must be aggregates or the "
              "ordering attribute");
        }
      }
      auto* proj = cq->plan_.Make<ProjectOp>(post, "project-out");
      append(proj);
      desc += "project";
      // Output schema: compute types by checking against the mid layout.
      std::vector<Field> out_fields;
      for (size_t i = 0; i < post.size(); ++i) {
        auto t = post[i]->Check(mid_schema);
        if (!t.ok()) return t.status();
        out_fields.push_back({names[i], *t});
      }
      cq->output_schema_ = Schema(std::move(out_fields));
    } else {
      GroupByOptions opt;
      opt.key_cols = aq.group_cols;
      for (const ResolvedAgg& a : aq.aggs) opt.aggs.push_back(a.spec);
      opt.window_size = aq.tumbling_size;
      if (q.having != nullptr) {
        auto h = lower.Lower(q.having);
        if (!h.ok()) return h.status();
        opt.having = std::move(*h);
      }
      auto mid = GroupByAggregateOp::OutputSchema(aq.combined, opt);
      if (!mid.ok()) return mid.status();
      mid_schema = *mid;
      auto* gb = cq->plan_.Make<GroupByAggregateOp>(opt);
      append(gb);
      desc += "group-by -> ";

      std::vector<ExprRef> post;
      std::vector<std::string> names;
      for (size_t i = 0; i < q.select.size(); ++i) {
        const SelectItem& item = q.select[i];
        names.push_back(DeriveName(item, i));
        auto e = lower.Lower(item.expr);
        if (!e.ok()) return e.status();
        post.push_back(std::move(*e));
      }
      auto* proj = cq->plan_.Make<ProjectOp>(post, "project-out");
      append(proj);
      desc += "project";
      std::vector<Field> out_fields;
      for (size_t i = 0; i < post.size(); ++i) {
        auto t = post[i]->Check(mid_schema);
        if (!t.ok()) return t.status();
        out_fields.push_back({names[i], *t});
      }
      cq->output_schema_ = Schema(std::move(out_fields));
    }
  } else if (q.distinct) {
    std::vector<int> cols;
    std::vector<Field> out_fields;
    for (const SelectItem& item : q.select) {
      if (item.expr->kind != AstExpr::Kind::kIdent) {
        return Status::Unimplemented(
            "SELECT DISTINCT supports plain columns only");
      }
      auto e = LowerExpr(item.expr, aliases, schemas, aq.stream_offset);
      if (!e.ok()) return e.status();
      if ((*e)->kind() != ExprKind::kColumn) {
        return Status::Internal("expected column expression");
      }
      int idx = (*e)->column_index();
      cols.push_back(idx);
      Field f = aq.combined.field(static_cast<size_t>(idx));
      if (!item.alias.empty()) f.name = item.alias;
      out_fields.push_back(f);
    }
    // Reset the seen-set per stream window when one is declared.
    int64_t window = 0;
    if (aq.num_streams == 1 && q.from[0].window.has_value() &&
        q.from[0].window->kind == WindowKind::kTimeSliding) {
      window = q.from[0].window->size;
    }
    auto* distinct = cq->plan_.Make<DistinctOp>(cols, window);
    append(distinct);
    desc += "distinct";
    cq->output_schema_ = Schema(std::move(out_fields));
  } else {
    std::vector<ExprRef> exprs;
    std::vector<std::string> names;
    for (size_t i = 0; i < q.select.size(); ++i) {
      auto e = LowerExpr(q.select[i].expr, aliases, schemas, aq.stream_offset);
      if (!e.ok()) return e.status();
      exprs.push_back(std::move(*e));
      names.push_back(DeriveName(q.select[i], i));
    }
    auto out_schema = ProjectOp::OutputSchema(aq.combined, exprs, names);
    if (!out_schema.ok()) return out_schema.status();
    auto* proj = cq->plan_.Make<ProjectOp>(exprs, "project-out");
    append(proj);
    desc += "project";
    cq->output_schema_ = *out_schema;
  }

  cq->root_ = tail;
  cq->analysis_ = std::move(aq);
  cq->plan_desc_ = desc;
  return cq;
}

}  // namespace cql
}  // namespace sqp
