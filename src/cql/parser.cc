#include "cql/parser.h"

#include "common/strings.h"
#include "cql/lexer.h"

namespace sqp {
namespace cql {

namespace {

/// Recursive-descent parser over the token vector.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> ParseQuery() {
    Query q;
    SQP_RETURN_NOT_OK(ExpectKeyword("select"));
    if (PeekKeyword("distinct")) {
      Advance();
      q.distinct = true;
    }
    auto items = ParseSelectItems();
    if (!items.ok()) return items.status();
    q.select = std::move(*items);

    SQP_RETURN_NOT_OK(ExpectKeyword("from"));
    while (true) {
      auto stream = ParseStreamRef();
      if (!stream.ok()) return stream.status();
      q.from.push_back(std::move(*stream));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    if (q.from.size() > 2) {
      return Status::Unimplemented(
          "queries over more than two streams are not supported");
    }

    if (PeekKeyword("where")) {
      Advance();
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      q.where = std::move(*e);
    }
    if (PeekKeyword("group")) {
      Advance();
      SQP_RETURN_NOT_OK(ExpectKeyword("by"));
      auto items2 = ParseSelectItems();
      if (!items2.ok()) return items2.status();
      q.group_by = std::move(*items2);
    }
    if (PeekKeyword("having")) {
      Advance();
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      q.having = std::move(*e);
    }
    if (Peek().kind != TokenKind::kEof) {
      return Err("unexpected trailing input");
    }
    return q;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(const char* kw) const { return Peek().IsKeyword(kw); }

  Status ExpectKeyword(const char* kw) {
    if (!PeekKeyword(kw)) {
      return Err(std::string("expected '") + kw + "'");
    }
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(const char* s) {
    if (!Peek().IsSymbol(s)) {
      return Err(std::string("expected '") + s + "'");
    }
    Advance();
    return Status::OK();
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(
        StrFormat("%s at offset %zu (near '%s')", msg.c_str(), Peek().pos,
                  Peek().text.c_str()));
  }

  static bool IsReserved(const std::string& ident) {
    static const char* kReserved[] = {"select", "distinct", "from", "where",
                                      "group",  "by",       "having", "as",
                                      "and",    "or",       "not",  "range",
                                      "rows"};
    for (const char* r : kReserved) {
      if (ident == r) return true;
    }
    return false;
  }

  Result<std::vector<SelectItem>> ParseSelectItems() {
    std::vector<SelectItem> items;
    while (true) {
      SelectItem item;
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      item.expr = std::move(*e);
      if (PeekKeyword("as")) {
        Advance();
        if (Peek().kind != TokenKind::kIdent) return Err("expected alias");
        item.alias = Advance().text;
      }
      items.push_back(std::move(item));
      if (Peek().IsSymbol(",")) {
        // A comma inside SELECT/GROUP BY vs FROM-separator ambiguity does
        // not arise: this helper is only used where items are expected.
        Advance();
        continue;
      }
      break;
    }
    return items;
  }

  Result<StreamRef> ParseStreamRef() {
    if (Peek().kind != TokenKind::kIdent || IsReserved(Peek().text)) {
      return Err("expected stream name");
    }
    StreamRef ref;
    ref.name = Advance().text;
    ref.alias = ref.name;
    if (Peek().kind == TokenKind::kIdent && !IsReserved(Peek().text)) {
      ref.alias = Advance().text;
    }
    if (Peek().IsSymbol("[")) {
      Advance();
      WindowSpec spec;
      if (PeekKeyword("partition")) {
        Advance();
        SQP_RETURN_NOT_OK(ExpectKeyword("by"));
        if (Peek().kind != TokenKind::kIdent || IsReserved(Peek().text)) {
          return Err("expected partition column");
        }
        ref.partition_by = Advance().text;
        SQP_RETURN_NOT_OK(ExpectKeyword("rows"));
        if (Peek().kind != TokenKind::kInt) return Err("expected row count");
        spec = WindowSpec::CountSliding(Advance().int_val);
        SQP_RETURN_NOT_OK(ExpectSymbol("]"));
        SQP_RETURN_NOT_OK(spec.Validate());
        ref.window = spec;
        return ref;
      }
      if (PeekKeyword("range")) {
        Advance();
        if (Peek().kind != TokenKind::kInt) return Err("expected window size");
        spec = WindowSpec::TimeSliding(Advance().int_val);
      } else if (PeekKeyword("rows")) {
        Advance();
        if (Peek().kind != TokenKind::kInt) return Err("expected row count");
        spec = WindowSpec::CountSliding(Advance().int_val);
      } else {
        return Err("expected RANGE or ROWS");
      }
      SQP_RETURN_NOT_OK(ExpectSymbol("]"));
      SQP_RETURN_NOT_OK(spec.Validate());
      ref.window = spec;
    }
    return ref;
  }

  // --- Expressions (precedence climbing) ---

  // Every recursive descent into an expression passes through here.
  // Deeply nested input (kilobytes of '(' from a hostile client) would
  // otherwise overflow the stack — a process kill no try/catch can stop.
  static constexpr int kMaxExprDepth = 200;

  Result<AstExprRef> ParseExpr() {
    if (depth_ >= kMaxExprDepth) {
      return Status::ParseError("expression nesting too deep");
    }
    ++depth_;
    auto e = ParseOr();
    --depth_;
    return e;
  }

  Result<AstExprRef> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    while (PeekKeyword("or")) {
      Advance();
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      lhs = AstExpr::Binary(BinOp::kOr, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  Result<AstExprRef> ParseAnd() {
    auto lhs = ParseNot();
    if (!lhs.ok()) return lhs;
    while (PeekKeyword("and")) {
      Advance();
      auto rhs = ParseNot();
      if (!rhs.ok()) return rhs;
      lhs = AstExpr::Binary(BinOp::kAnd, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  Result<AstExprRef> ParseNot() {
    if (PeekKeyword("not")) {
      // Self-recursion that bypasses ParseExpr ("not not not ...") needs
      // its own depth charge.
      if (depth_ >= kMaxExprDepth) {
        return Status::ParseError("expression nesting too deep");
      }
      Advance();
      ++depth_;
      auto e = ParseNot();
      --depth_;
      if (!e.ok()) return e;
      return AstExpr::MakeNot(std::move(*e));
    }
    return ParseComparison();
  }

  Result<AstExprRef> ParseComparison() {
    auto lhs = ParseAddSub();
    if (!lhs.ok()) return lhs;
    struct CmpMap {
      const char* sym;
      BinOp op;
    };
    static const CmpMap kCmps[] = {{"=", BinOp::kEq},  {"!=", BinOp::kNe},
                                   {"<=", BinOp::kLe}, {">=", BinOp::kGe},
                                   {"<", BinOp::kLt},  {">", BinOp::kGt}};
    for (const CmpMap& c : kCmps) {
      if (Peek().IsSymbol(c.sym)) {
        Advance();
        auto rhs = ParseAddSub();
        if (!rhs.ok()) return rhs;
        return AstExpr::Binary(c.op, std::move(*lhs), std::move(*rhs));
      }
    }
    return lhs;
  }

  Result<AstExprRef> ParseAddSub() {
    auto lhs = ParseMulDiv();
    if (!lhs.ok()) return lhs;
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      BinOp op = Advance().text == "+" ? BinOp::kAdd : BinOp::kSub;
      auto rhs = ParseMulDiv();
      if (!rhs.ok()) return rhs;
      lhs = AstExpr::Binary(op, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  Result<AstExprRef> ParseMulDiv() {
    auto lhs = ParsePrimary();
    if (!lhs.ok()) return lhs;
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/") ||
           Peek().IsSymbol("%")) {
      std::string sym = Advance().text;
      BinOp op = sym == "*" ? BinOp::kMul
                            : (sym == "/" ? BinOp::kDiv : BinOp::kMod);
      auto rhs = ParsePrimary();
      if (!rhs.ok()) return rhs;
      lhs = AstExpr::Binary(op, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  Result<AstExprRef> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kInt: {
        Advance();
        return AstExpr::Const(Value(tok.int_val));
      }
      case TokenKind::kDouble: {
        Advance();
        return AstExpr::Const(Value(tok.double_val));
      }
      case TokenKind::kString: {
        Advance();
        return AstExpr::Const(Value(tok.text));
      }
      case TokenKind::kSymbol: {
        if (tok.IsSymbol("(")) {
          Advance();
          auto e = ParseExpr();
          if (!e.ok()) return e;
          SQP_RETURN_NOT_OK(ExpectSymbol(")"));
          return e;
        }
        if (tok.IsSymbol("-")) {
          // Unary minus chains ("- - - 1") recurse without a ParseExpr
          // hop; count them against the same budget.
          if (depth_ >= kMaxExprDepth) {
            return Status::ParseError("expression nesting too deep");
          }
          Advance();
          ++depth_;
          auto e = ParsePrimary();
          --depth_;
          if (!e.ok()) return e;
          return AstExpr::Binary(BinOp::kSub, AstExpr::Const(Value(int64_t{0})),
                                 std::move(*e));
        }
        return Err("unexpected symbol in expression");
      }
      case TokenKind::kIdent: {
        if (IsReserved(tok.text)) return Err("unexpected keyword");
        std::string first = Advance().text;
        // Function call?
        if (Peek().IsSymbol("(")) {
          Advance();
          std::vector<AstExprRef> args;
          if (Peek().IsSymbol("*")) {
            Advance();
            args.push_back(AstExpr::Star());
          } else if (!Peek().IsSymbol(")")) {
            while (true) {
              auto a = ParseExpr();
              if (!a.ok()) return a;
              args.push_back(std::move(*a));
              if (Peek().IsSymbol(",")) {
                Advance();
                continue;
              }
              break;
            }
          }
          SQP_RETURN_NOT_OK(ExpectSymbol(")"));
          return AstExpr::Call(std::move(first), std::move(args));
        }
        // Qualified column?
        if (Peek().IsSymbol(".")) {
          Advance();
          if (Peek().kind != TokenKind::kIdent) return Err("expected column");
          std::string col = Advance().text;
          return AstExpr::Ident(std::move(first), std::move(col));
        }
        return AstExpr::Ident("", std::move(first));
      }
      case TokenKind::kEof:
        return Err("unexpected end of query");
    }
    return Err("unexpected token");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;  // Live expression-recursion depth (kMaxExprDepth cap).
};

}  // namespace

Result<Query> Parse(const std::string& text) {
  auto tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.ParseQuery();
}

}  // namespace cql
}  // namespace sqp
