#include "cql/analyzer.h"

#include <algorithm>
#include <functional>
#include <set>

#include "common/strings.h"

namespace sqp {
namespace cql {

namespace {

/// Resolves [qualifier.]name to a combined-layout column index.
Result<int> ResolveIdent(const std::string& qualifier, const std::string& name,
                         const std::vector<std::string>& aliases,
                         const std::vector<SchemaRef>& schemas,
                         const std::vector<int>& offsets) {
  int found = -1;
  for (size_t s = 0; s < schemas.size(); ++s) {
    if (!qualifier.empty() && qualifier != aliases[s]) continue;
    int idx = schemas[s]->FieldIndex(name);
    if (idx >= 0) {
      if (found >= 0) {
        return Status::InvalidArgument("ambiguous column: " + name);
      }
      found = offsets[s] + idx;
    }
  }
  if (found < 0) {
    std::string full = qualifier.empty() ? name : qualifier + "." + name;
    return Status::NotFound("unknown column: " + full);
  }
  return found;
}

/// Streams referenced by an AST expression (bitmask: 1 = stream0, 2 = s1).
Result<int> StreamsOf(const AstExprRef& e,
                      const std::vector<std::string>& aliases,
                      const std::vector<SchemaRef>& schemas,
                      const std::vector<int>& offsets) {
  switch (e->kind) {
    case AstExpr::Kind::kConst:
    case AstExpr::Kind::kStar:
      return 0;
    case AstExpr::Kind::kIdent: {
      auto idx = ResolveIdent(e->qualifier, e->name, aliases, schemas, offsets);
      if (!idx.ok()) return idx.status();
      for (size_t s = schemas.size(); s-- > 0;) {
        if (*idx >= offsets[s]) return 1 << s;
      }
      return 1;
    }
    case AstExpr::Kind::kBinary: {
      auto l = StreamsOf(e->lhs, aliases, schemas, offsets);
      if (!l.ok()) return l;
      auto r = StreamsOf(e->rhs, aliases, schemas, offsets);
      if (!r.ok()) return r;
      return *l | *r;
    }
    case AstExpr::Kind::kNot:
      return StreamsOf(e->child, aliases, schemas, offsets);
    case AstExpr::Kind::kCall: {
      int mask = 0;
      for (const AstExprRef& a : e->args) {
        auto m = StreamsOf(a, aliases, schemas, offsets);
        if (!m.ok()) return m;
        mask |= *m;
      }
      return mask;
    }
  }
  return 0;
}

void FlattenConjuncts(const AstExprRef& e, std::vector<AstExprRef>* out) {
  if (e == nullptr) return;
  if (e->kind == AstExpr::Kind::kBinary && e->op == BinOp::kAnd) {
    FlattenConjuncts(e->lhs, out);
    FlattenConjuncts(e->rhs, out);
    return;
  }
  out->push_back(e);
}

bool IsAggName(const std::string& fn) { return ParseAggKind(fn).ok(); }

/// True when the expression contains an aggregate call anywhere.
bool ContainsAggregate(const AstExprRef& e) {
  if (e == nullptr) return false;
  switch (e->kind) {
    case AstExpr::Kind::kCall:
      if (IsAggName(e->fn)) return true;
      for (const AstExprRef& a : e->args) {
        if (ContainsAggregate(a)) return true;
      }
      return false;
    case AstExpr::Kind::kBinary:
      return ContainsAggregate(e->lhs) || ContainsAggregate(e->rhs);
    case AstExpr::Kind::kNot:
      return ContainsAggregate(e->child);
    default:
      return false;
  }
}

}  // namespace

Status Catalog::Register(const std::string& name, SchemaRef schema,
                         std::vector<FieldDomain> domains) {
  if (entries_.count(name) > 0) {
    return Status::AlreadyExists("stream already registered: " + name);
  }
  CatalogEntry entry;
  if (domains.size() > schema->num_fields()) {
    return Status::InvalidArgument("more domains than fields");
  }
  domains.resize(schema->num_fields());
  for (size_t i = 0; i < domains.size(); ++i) {
    if (domains[i].name.empty()) domains[i].name = schema->field(i).name;
  }
  entry.schema = std::move(schema);
  entry.domains = std::move(domains);
  entries_.emplace(name, std::move(entry));
  return Status::OK();
}

const CatalogEntry* Catalog::Lookup(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

Result<ExprRef> LowerExpr(const AstExprRef& ast,
                          const std::vector<std::string>& aliases,
                          const std::vector<SchemaRef>& schemas,
                          const std::vector<int>& offsets) {
  switch (ast->kind) {
    case AstExpr::Kind::kConst:
      return Lit(ast->value);
    case AstExpr::Kind::kIdent: {
      auto idx = ResolveIdent(ast->qualifier, ast->name, aliases, schemas,
                              offsets);
      if (!idx.ok()) return idx.status();
      return Col(*idx);
    }
    case AstExpr::Kind::kBinary: {
      auto l = LowerExpr(ast->lhs, aliases, schemas, offsets);
      if (!l.ok()) return l;
      auto r = LowerExpr(ast->rhs, aliases, schemas, offsets);
      if (!r.ok()) return r;
      return Bin(ast->op, std::move(*l), std::move(*r));
    }
    case AstExpr::Kind::kNot: {
      auto c = LowerExpr(ast->child, aliases, schemas, offsets);
      if (!c.ok()) return c;
      return Not(std::move(*c));
    }
    case AstExpr::Kind::kCall: {
      if (IsAggName(ast->fn)) {
        return Status::InvalidArgument(
            "aggregate " + ast->fn + " not allowed in this context");
      }
      if (ast->fn == "contains") {
        if (ast->args.size() != 2) {
          return Status::InvalidArgument("contains() takes two arguments");
        }
        auto h = LowerExpr(ast->args[0], aliases, schemas, offsets);
        if (!h.ok()) return h;
        auto nd = LowerExpr(ast->args[1], aliases, schemas, offsets);
        if (!nd.ok()) return nd;
        return ContainsFn(std::move(*h), std::move(*nd));
      }
      return Status::Unimplemented("unknown function: " + ast->fn);
    }
    case AstExpr::Kind::kStar:
      return Status::InvalidArgument("'*' outside count(*)");
  }
  return Status::Internal("unhandled AST node");
}

Result<AnalyzedQuery> Analyze(const Query& query, const Catalog& catalog) {
  AnalyzedQuery out;
  out.ast = query;
  out.num_streams = static_cast<int>(query.from.size());
  if (query.from.empty()) {
    return Status::InvalidArgument("query has no FROM clause");
  }

  // Resolve streams; build the combined layout.
  std::vector<std::string> aliases;
  std::vector<SchemaRef> schemas;
  for (const StreamRef& ref : query.from) {
    const CatalogEntry* entry = catalog.Lookup(ref.name);
    if (entry == nullptr) {
      return Status::NotFound("unknown stream: " + ref.name);
    }
    out.entries.push_back(entry);
    aliases.push_back(ref.alias);
    schemas.push_back(entry->schema);
  }
  // Detect cross-stream name clashes to prefix combined field names.
  std::set<std::string> clash;
  if (schemas.size() == 2) {
    for (const Field& f : schemas[0]->fields()) {
      if (schemas[1]->FieldIndex(f.name) >= 0) clash.insert(f.name);
    }
  }
  for (size_t s = 0; s < schemas.size(); ++s) {
    out.stream_offset.push_back(static_cast<int>(out.combined.num_fields()));
    for (size_t i = 0; i < schemas[s]->num_fields(); ++i) {
      Field f = schemas[s]->field(i);
      if (clash.count(f.name) > 0) f.name = aliases[s] + "_" + f.name;
      out.combined.AddField(f);
      out.combined_domains.push_back(out.entries[s]->domains[i]);
    }
  }

  // Split WHERE into per-stream filters, join conditions, and residual.
  std::vector<AstExprRef> conjuncts;
  FlattenConjuncts(query.where, &conjuncts);
  for (const AstExprRef& c : conjuncts) {
    auto mask = StreamsOf(c, aliases, schemas, out.stream_offset);
    if (!mask.ok()) return mask.status();
    // Cross-stream equality between two columns = join condition.
    if (out.num_streams == 2 && *mask == 3 &&
        c->kind == AstExpr::Kind::kBinary && c->op == BinOp::kEq &&
        c->lhs->kind == AstExpr::Kind::kIdent &&
        c->rhs->kind == AstExpr::Kind::kIdent) {
      auto li = ResolveIdent(c->lhs->qualifier, c->lhs->name, aliases, schemas,
                             out.stream_offset);
      if (!li.ok()) return li.status();
      auto ri = ResolveIdent(c->rhs->qualifier, c->rhs->name, aliases, schemas,
                             out.stream_offset);
      if (!ri.ok()) return ri.status();
      int a = *li, b = *ri;
      if (a > b) std::swap(a, b);
      out.join_left_cols.push_back(a);
      out.join_right_cols.push_back(b - out.stream_offset[1]);
      continue;
    }
    if (out.num_streams == 2 && *mask == 2) {
      // Right-only: lower against stream 1's own schema.
      auto e = LowerExpr(c, {aliases[1]}, {schemas[1]}, {0});
      if (!e.ok()) return e.status();
      out.right_only.push_back(std::move(*e));
    } else if (*mask <= 1) {
      auto e = LowerExpr(c, {aliases[0]}, {schemas[0]}, {0});
      if (!e.ok()) return e.status();
      out.left_only.push_back(std::move(*e));
    } else {
      auto e = LowerExpr(c, aliases, schemas, out.stream_offset);
      if (!e.ok()) return e.status();
      out.residual.push_back(std::move(*e));
    }
  }
  if (out.num_streams == 2 && out.join_left_cols.empty()) {
    return Status::InvalidArgument(
        "two-stream query requires an equality join condition");
  }

  // Grouping: plain columns, or one ordering/K window expression.
  out.has_group_by = !query.group_by.empty();
  for (const SelectItem& item : query.group_by) {
    const AstExprRef& g = item.expr;
    if (g->kind == AstExpr::Kind::kIdent) {
      auto idx =
          ResolveIdent(g->qualifier, g->name, aliases, schemas, out.stream_offset);
      if (!idx.ok()) return idx.status();
      out.group_cols.push_back(*idx);
      continue;
    }
    // ordering / K (the `time/60 as tb` shifting window).
    if (g->kind == AstExpr::Kind::kBinary && g->op == BinOp::kDiv &&
        g->lhs->kind == AstExpr::Kind::kIdent &&
        g->rhs->kind == AstExpr::Kind::kConst &&
        g->rhs->value.type() == ValueType::kInt) {
      auto idx = ResolveIdent(g->lhs->qualifier, g->lhs->name, aliases, schemas,
                              out.stream_offset);
      if (!idx.ok()) return idx.status();
      // Must be an ordering attribute of its stream.
      bool is_ordering = false;
      for (size_t s = 0; s < schemas.size(); ++s) {
        if (schemas[s]->has_ordering() &&
            out.stream_offset[s] + schemas[s]->ordering_index() == *idx) {
          is_ordering = true;
        }
      }
      if (!is_ordering) {
        return Status::Unimplemented(
            "group-by division is only supported on the ordering attribute");
      }
      if (out.tumbling_size != 0) {
        return Status::InvalidArgument("multiple window expressions in GROUP BY");
      }
      out.tumbling_size = g->rhs->value.AsInt();
      if (out.tumbling_size <= 0) {
        return Status::InvalidArgument("window width must be positive");
      }
      continue;
    }
    return Status::Unimplemented(
        "GROUP BY supports plain columns and <ordering>/<const>: " +
        g->ToString());
  }

  // Collect aggregates from SELECT and HAVING, canonical order, deduped.
  auto add_agg = [&](const AstExprRef& call) -> Status {
    std::string text = call->ToString();
    for (const ResolvedAgg& a : out.aggs) {
      if (a.text == text) return Status::OK();
    }
    ResolvedAgg ra;
    ra.text = text;
    auto kind = ParseAggKind(call->fn);
    if (!kind.ok()) return kind.status();
    ra.spec.kind = *kind;
    if (call->args.size() == 1 && call->args[0]->kind == AstExpr::Kind::kStar) {
      if (ra.spec.kind != AggKind::kCount) {
        return Status::InvalidArgument("'*' argument only valid for count()");
      }
      ra.spec.input_col = -1;
    } else if (call->args.size() == 1 &&
               call->args[0]->kind == AstExpr::Kind::kIdent) {
      auto idx = ResolveIdent(call->args[0]->qualifier, call->args[0]->name,
                              aliases, schemas, out.stream_offset);
      if (!idx.ok()) return idx.status();
      ra.spec.input_col = *idx;
    } else {
      return Status::Unimplemented(
          "aggregate arguments must be a column or '*': " + text);
    }
    out.aggs.push_back(std::move(ra));
    return Status::OK();
  };
  std::function<Status(const AstExprRef&)> scan_aggs =
      [&](const AstExprRef& e) -> Status {
    if (e == nullptr) return Status::OK();
    switch (e->kind) {
      case AstExpr::Kind::kCall:
        if (IsAggName(e->fn)) return add_agg(e);
        for (const AstExprRef& a : e->args) SQP_RETURN_NOT_OK(scan_aggs(a));
        return Status::OK();
      case AstExpr::Kind::kBinary:
        SQP_RETURN_NOT_OK(scan_aggs(e->lhs));
        return scan_aggs(e->rhs);
      case AstExpr::Kind::kNot:
        return scan_aggs(e->child);
      default:
        return Status::OK();
    }
  };
  for (const SelectItem& item : query.select) {
    SQP_RETURN_NOT_OK(scan_aggs(item.expr));
  }
  SQP_RETURN_NOT_OK(scan_aggs(query.having));
  out.has_aggregates = !out.aggs.empty();

  if (query.having != nullptr && !out.has_aggregates && !out.has_group_by) {
    return Status::InvalidArgument("HAVING requires GROUP BY or aggregates");
  }
  if (out.has_group_by && !out.has_aggregates) {
    // GROUP BY without aggregates is DISTINCT over the group keys.
    out.has_aggregates = false;
  }

  // [ABB+02] memory analysis.
  // Tighten domains with constant range predicates from WHERE.
  std::vector<FieldDomain> tight = out.combined_domains;
  {
    struct Range {
      bool has_lo = false, has_hi = false;
      int64_t lo = 0, hi = 0;
    };
    std::map<int, Range> ranges;
    for (const AstExprRef& c : conjuncts) {
      if (c->kind != AstExpr::Kind::kBinary) continue;
      const AstExprRef *ident = nullptr, *cst = nullptr;
      BinOp op = c->op;
      if (c->lhs->kind == AstExpr::Kind::kIdent &&
          c->rhs->kind == AstExpr::Kind::kConst) {
        ident = &c->lhs;
        cst = &c->rhs;
      } else if (c->rhs->kind == AstExpr::Kind::kIdent &&
                 c->lhs->kind == AstExpr::Kind::kConst) {
        ident = &c->rhs;
        cst = &c->lhs;
        // Mirror the comparison.
        switch (op) {
          case BinOp::kLt: op = BinOp::kGt; break;
          case BinOp::kLe: op = BinOp::kGe; break;
          case BinOp::kGt: op = BinOp::kLt; break;
          case BinOp::kGe: op = BinOp::kLe; break;
          default: break;
        }
      } else {
        continue;
      }
      if ((*cst)->value.type() != ValueType::kInt) continue;
      auto idx = ResolveIdent((*ident)->qualifier, (*ident)->name, aliases,
                              schemas, out.stream_offset);
      if (!idx.ok()) continue;
      int64_t v = (*cst)->value.AsInt();
      Range& r = ranges[*idx];
      switch (op) {
        case BinOp::kEq:
          r.has_lo = r.has_hi = true;
          r.lo = r.hi = v;
          break;
        case BinOp::kLt:
          r.has_hi = true;
          r.hi = v - 1;
          break;
        case BinOp::kLe:
          r.has_hi = true;
          r.hi = v;
          break;
        case BinOp::kGt:
          r.has_lo = true;
          r.lo = v + 1;
          break;
        case BinOp::kGe:
          r.has_lo = true;
          r.lo = v;
          break;
        default:
          break;
      }
    }
    for (const auto& [idx, r] : ranges) {
      if (r.has_lo && r.has_hi && r.hi >= r.lo) {
        tight[static_cast<size_t>(idx)].bounded = true;
        tight[static_cast<size_t>(idx)].size =
            static_cast<uint64_t>(r.hi - r.lo + 1);
      }
    }
  }

  if (out.has_aggregates || out.has_group_by || query.distinct) {
    AggQueryDesc desc;
    desc.windowed_by_ordering = out.tumbling_size > 0;
    std::vector<int> key_cols = out.group_cols;
    // A partitioned window keeps independent state per key: the key's
    // domain bounds live partitions exactly like a grouping attribute.
    if (out.num_streams == 1 && !query.from[0].partition_by.empty()) {
      auto idx = ResolveIdent("", query.from[0].partition_by, aliases,
                              schemas, out.stream_offset);
      if (!idx.ok()) return idx.status();
      key_cols.push_back(*idx);
    }
    if (query.distinct && !out.has_group_by) {
      // DISTINCT groups on the selected columns.
      for (const SelectItem& item : query.select) {
        if (item.expr->kind == AstExpr::Kind::kIdent) {
          auto idx = ResolveIdent(item.expr->qualifier, item.expr->name,
                                  aliases, schemas, out.stream_offset);
          if (idx.ok()) key_cols.push_back(*idx);
        }
      }
    }
    for (int c : key_cols) {
      desc.group_domains.push_back(tight[static_cast<size_t>(c)]);
    }
    for (const ResolvedAgg& a : out.aggs) {
      AggQueryDesc::AggInput in;
      in.kind = a.spec.kind;
      in.input_bounded =
          a.spec.input_col < 0 ||
          tight[static_cast<size_t>(a.spec.input_col)].bounded;
      desc.aggs.push_back(in);
    }
    out.memory = AnalyzeAggregateQuery(desc);
  } else if (out.num_streams == 2) {
    bool windowed = query.from[0].window.has_value() &&
                    query.from[1].window.has_value();
    out.memory.verdict =
        windowed ? MemoryVerdict::kBounded : MemoryVerdict::kUnbounded;
    out.memory.explanation =
        windowed ? "join state bounded by the per-stream windows"
                 : "unwindowed stream join may buffer both streams entirely";
  } else {
    out.memory.verdict = MemoryVerdict::kBounded;
    out.memory.explanation = "per-element operators only (no state)";
  }

  return out;
}

}  // namespace cql
}  // namespace sqp
