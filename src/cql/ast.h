#ifndef SQP_CQL_AST_H_
#define SQP_CQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"
#include "exec/expr.h"
#include "window/window_spec.h"

namespace sqp {
namespace cql {

/// Unresolved expression node produced by the parser. Resolution against
/// a catalog happens in the analyzer, which lowers to sqp::Expr.
struct AstExpr;
using AstExprRef = std::shared_ptr<AstExpr>;

struct AstExpr {
  enum class Kind {
    kIdent,   // [qualifier.]name
    kConst,   // literal
    kBinary,  // op lhs rhs
    kNot,
    kCall,   // fn(args) or fn(*) — aggregates and scalar functions
    kStar,   // '*' inside count(*)
  };

  Kind kind = Kind::kConst;

  // kIdent
  std::string qualifier;  // Empty when unqualified.
  std::string name;

  // kConst
  Value value;

  // kBinary
  BinOp op = BinOp::kEq;
  AstExprRef lhs, rhs;

  // kNot
  AstExprRef child;

  // kCall
  std::string fn;
  std::vector<AstExprRef> args;

  std::string ToString() const;

  static AstExprRef Ident(std::string qualifier, std::string name);
  static AstExprRef Const(Value v);
  static AstExprRef Binary(BinOp op, AstExprRef lhs, AstExprRef rhs);
  static AstExprRef MakeNot(AstExprRef e);
  static AstExprRef Call(std::string fn, std::vector<AstExprRef> args);
  static AstExprRef Star();
};

/// One SELECT-list item.
struct SelectItem {
  AstExprRef expr;
  std::string alias;  // Empty = derive from expression.
};

/// One FROM-clause stream reference with its optional window (slide 30:
/// `Traffic1 A [window T1]`). RANGE = time units on the ordering
/// attribute; ROWS = tuple count. `[partition by k rows n]` declares an
/// independent per-key window (slide 26 "variants"); `partition_by`
/// holds the key column name.
struct StreamRef {
  std::string name;
  std::string alias;  // Defaults to name.
  std::optional<WindowSpec> window;
  std::string partition_by;  // Empty = unpartitioned.
};

/// A parsed continuous query.
struct Query {
  bool distinct = false;
  std::vector<SelectItem> select;
  std::vector<StreamRef> from;  // 1 or 2 streams.
  AstExprRef where;             // May be null.
  std::vector<SelectItem> group_by;
  AstExprRef having;  // May be null.

  std::string ToString() const;
};

}  // namespace cql
}  // namespace sqp

#endif  // SQP_CQL_AST_H_
