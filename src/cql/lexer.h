#ifndef SQP_CQL_LEXER_H_
#define SQP_CQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace sqp {
namespace cql {

enum class TokenKind {
  kEof,
  kIdent,    // unquoted identifier or keyword (case-insensitive)
  kInt,      // integer literal
  kDouble,   // floating literal
  kString,   // 'quoted'
  kSymbol,   // punctuation / operator, text holds the exact symbol
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;      // Normalized: identifiers lowercased.
  int64_t int_val = 0;
  double double_val = 0.0;
  size_t pos = 0;        // Byte offset in the query (for diagnostics).

  bool IsSymbol(const char* s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
  bool IsKeyword(const char* kw) const {
    return kind == TokenKind::kIdent && text == kw;
  }
};

/// Tokenizes a CQL/GSQL query. Symbols: ( ) [ ] , . * + - / % = != < <=
/// > >= ; identifiers are lowercased (the language is case-insensitive).
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace cql
}  // namespace sqp

#endif  // SQP_CQL_LEXER_H_
