#ifndef SQP_CQL_PLANNER_H_
#define SQP_CQL_PLANNER_H_

#include <memory>
#include <string>

#include "cql/analyzer.h"
#include "exec/plan.h"

namespace sqp {
namespace cql {

/// A compiled, runnable continuous query.
///
/// Feed stream elements into `input(0)` (and `input(1)` for joins), then
/// `Finish()`. Attach a sink with `AttachSink` before pushing.
class CompiledQuery {
 public:
  /// Entry operator for stream i.
  Operator* input(int i) const { return inputs_[static_cast<size_t>(i)]; }
  /// Port of `input(i)` that stream i's elements are delivered on.
  int input_port(int i) const { return ports_[static_cast<size_t>(i)]; }
  int num_inputs() const { return static_cast<int>(inputs_.size()); }

  /// Connects the query's output to `sink`.
  void AttachSink(Operator* sink) { root_->SetOutput(sink); }

  /// Pushes one element into input `i` (through the instrumented entry
  /// point so bound plans report metrics/lineage — see Operator::Process).
  void Push(const Element& e, int i = 0) {
    inputs_[static_cast<size_t>(i)]->Process(e,
                                             ports_[static_cast<size_t>(i)]);
  }

  /// Signals end-of-stream on every input.
  void Finish();

  const Schema& output_schema() const { return output_schema_; }
  const MemoryAnalysis& memory() const { return memory_; }
  const AnalyzedQuery& analysis() const { return analysis_; }
  /// Human-readable operator chain ("select -> group-by -> project").
  const std::string& plan_desc() const { return plan_desc_; }
  Plan& plan() { return plan_; }

  /// Patches the query's external edges after a plan rewrite replaced
  /// `from` with `to`: input entry points move (ports preserved) and the
  /// root follows, so Push/AttachSink keep working on the rewritten
  /// plan. Call once per splice (see ShardStatefulOps).
  void ReplaceOperator(Operator* from, Operator* to) {
    for (Operator*& in : inputs_) {
      if (in == from) in = to;
    }
    if (root_ == from) root_ = to;
  }

 private:
  friend Result<std::unique_ptr<CompiledQuery>> Compile(
      const std::string& text, const Catalog& catalog);

  Plan plan_;
  std::vector<Operator*> inputs_;
  std::vector<int> ports_;
  Operator* root_ = nullptr;
  Schema output_schema_;
  MemoryAnalysis memory_;
  AnalyzedQuery analysis_;
  std::string plan_desc_;
};

/// Parses, analyzes, and lowers a query to a physical operator chain.
Result<std::unique_ptr<CompiledQuery>> Compile(const std::string& text,
                                               const Catalog& catalog);

}  // namespace cql
}  // namespace sqp

#endif  // SQP_CQL_PLANNER_H_
