#include "cql/ast.h"

namespace sqp {
namespace cql {

AstExprRef AstExpr::Ident(std::string qualifier, std::string name) {
  auto e = std::make_shared<AstExpr>();
  e->kind = Kind::kIdent;
  e->qualifier = std::move(qualifier);
  e->name = std::move(name);
  return e;
}

AstExprRef AstExpr::Const(Value v) {
  auto e = std::make_shared<AstExpr>();
  e->kind = Kind::kConst;
  e->value = std::move(v);
  return e;
}

AstExprRef AstExpr::Binary(BinOp op, AstExprRef lhs, AstExprRef rhs) {
  auto e = std::make_shared<AstExpr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

AstExprRef AstExpr::MakeNot(AstExprRef child) {
  auto e = std::make_shared<AstExpr>();
  e->kind = Kind::kNot;
  e->child = std::move(child);
  return e;
}

AstExprRef AstExpr::Call(std::string fn, std::vector<AstExprRef> args) {
  auto e = std::make_shared<AstExpr>();
  e->kind = Kind::kCall;
  e->fn = std::move(fn);
  e->args = std::move(args);
  return e;
}

AstExprRef AstExpr::Star() {
  auto e = std::make_shared<AstExpr>();
  e->kind = Kind::kStar;
  return e;
}

std::string AstExpr::ToString() const {
  switch (kind) {
    case Kind::kIdent:
      return qualifier.empty() ? name : qualifier + "." + name;
    case Kind::kConst:
      return value.type() == ValueType::kString ? "'" + value.ToString() + "'"
                                                : value.ToString();
    case Kind::kBinary:
      return "(" + lhs->ToString() + " " + BinOpName(op) + " " +
             rhs->ToString() + ")";
    case Kind::kNot:
      return "not " + child->ToString();
    case Kind::kCall: {
      std::string s = fn + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) s += ", ";
        s += args[i]->ToString();
      }
      return s + ")";
    }
    case Kind::kStar:
      return "*";
  }
  return "?";
}

std::string Query::ToString() const {
  std::string s = "select ";
  if (distinct) s += "distinct ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) s += ", ";
    s += select[i].expr->ToString();
    if (!select[i].alias.empty()) s += " as " + select[i].alias;
  }
  s += " from ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) s += ", ";
    s += from[i].name;
    if (from[i].alias != from[i].name) s += " " + from[i].alias;
    if (from[i].window.has_value()) {
      s += " [";
      if (!from[i].partition_by.empty()) {
        s += "partition by " + from[i].partition_by + " ";
      }
      s += from[i].window->ToString() + "]";
    }
  }
  if (where != nullptr) s += " where " + where->ToString();
  if (!group_by.empty()) {
    s += " group by ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) s += ", ";
      s += group_by[i].expr->ToString();
      if (!group_by[i].alias.empty()) s += " as " + group_by[i].alias;
    }
  }
  if (having != nullptr) s += " having " + having->ToString();
  return s;
}

}  // namespace cql
}  // namespace sqp
