#include "cql/lexer.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>

#include "common/strings.h"

namespace sqp {
namespace cql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();

  while (i < n) {
    char c = input[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    // Line comments: -- to end of line.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }

    Token tok;
    tok.pos = i;

    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(input[i])) ++i;
      tok.kind = TokenKind::kIdent;
      tok.text = ToLower(std::string_view(input).substr(start, i - start));
      out.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      std::string text = input.substr(start, i - start);
      if (is_double) {
        // strtod instead of std::stod: an overflowing literal like 1e999
        // (or a huge digit string) must come back as a lex error, not an
        // uncaught std::out_of_range that kills the process — this path
        // is reachable from the network via POST /query.
        errno = 0;
        char* end = nullptr;
        double d = std::strtod(text.c_str(), &end);
        if (end != text.c_str() + text.size() ||
            (errno == ERANGE && !std::isfinite(d))) {
          return Status::ParseError(
              StrFormat("numeric literal out of range at offset %zu: %s",
                        start, text.c_str()));
        }
        tok.kind = TokenKind::kDouble;
        tok.double_val = d;
      } else {
        // from_chars instead of std::stoll: same crash class — an int
        // literal past INT64_MAX must be a lex error, not a terminating
        // std::out_of_range.
        int64_t v = 0;
        auto [p, ec] =
            std::from_chars(text.data(), text.data() + text.size(), v);
        if (ec != std::errc() || p != text.data() + text.size()) {
          return Status::ParseError(
              StrFormat("integer literal out of range at offset %zu: %s",
                        start, text.c_str()));
        }
        tok.kind = TokenKind::kInt;
        tok.int_val = v;
      }
      tok.text = std::move(text);
      out.push_back(std::move(tok));
      continue;
    }

    if (c == '\'') {
      ++i;
      std::string s;
      while (i < n && input[i] != '\'') {
        s += input[i++];
      }
      if (i >= n) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %zu", tok.pos));
      }
      ++i;  // Closing quote.
      tok.kind = TokenKind::kString;
      tok.text = std::move(s);
      out.push_back(std::move(tok));
      continue;
    }

    // Multi-char symbols first.
    auto two = [&](const char* s) {
      return i + 1 < n && input[i] == s[0] && input[i + 1] == s[1];
    };
    if (two("!=") || two("<=") || two(">=") || two("<>")) {
      tok.kind = TokenKind::kSymbol;
      tok.text = input.substr(i, 2);
      if (tok.text == "<>") tok.text = "!=";
      i += 2;
      out.push_back(std::move(tok));
      continue;
    }
    static const std::string kSingles = "()[],.*+-/%=<>";
    if (kSingles.find(c) != std::string::npos) {
      tok.kind = TokenKind::kSymbol;
      tok.text = std::string(1, c);
      ++i;
      out.push_back(std::move(tok));
      continue;
    }

    return Status::ParseError(
        StrFormat("unexpected character '%c' at offset %zu", c, i));
  }

  Token eof;
  eof.kind = TokenKind::kEof;
  eof.pos = n;
  out.push_back(eof);
  return out;
}

}  // namespace cql
}  // namespace sqp
