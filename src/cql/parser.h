#ifndef SQP_CQL_PARSER_H_
#define SQP_CQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "cql/ast.h"

namespace sqp {
namespace cql {

/// Parses one continuous query. Grammar (case-insensitive):
///
///   query    := SELECT [DISTINCT] items FROM stream [, stream]
///               [WHERE expr] [GROUP BY items] [HAVING expr]
///   items    := expr [AS ident] {, expr [AS ident]}
///   stream   := ident [ident] [ '[' (RANGE int | ROWS int) ']' ]
///   expr     := or-expr with usual precedence:
///               or < and < not < comparison < addsub < muldiv < unary
///   primary  := ident[.ident] | ident '(' (expr {,expr} | '*') ')'
///               | literal | '(' expr ')'
///
/// Window syntax follows slide 30: `Traffic1 A [range 30]`,
/// `Traffic2 B [rows 1000]`.
Result<Query> Parse(const std::string& text);

}  // namespace cql
}  // namespace sqp

#endif  // SQP_CQL_PARSER_H_
