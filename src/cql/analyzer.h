#ifndef SQP_CQL_ANALYZER_H_
#define SQP_CQL_ANALYZER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "agg/partial_agg.h"
#include "common/schema.h"
#include "cql/ast.h"
#include "exec/expr.h"
#include "opt/memory_bound.h"

namespace sqp {
namespace cql {

/// A registered stream: schema plus per-field domain metadata used by the
/// bounded-memory analysis.
struct CatalogEntry {
  SchemaRef schema;
  std::vector<FieldDomain> domains;  // Parallel to schema fields.
};

/// Name -> stream registry.
class Catalog {
 public:
  /// Registers a stream. Missing domains default to unbounded.
  Status Register(const std::string& name, SchemaRef schema,
                  std::vector<FieldDomain> domains = {});

  const CatalogEntry* Lookup(const std::string& name) const;

 private:
  std::map<std::string, CatalogEntry> entries_;
};

/// An aggregate discovered in SELECT/HAVING, in canonical order.
struct ResolvedAgg {
  AggSpec spec;             // input_col indexes the combined layout.
  std::string text;         // Canonical AST text for dedup ("sum(len)").
};

/// The analyzer's output: everything the planner needs.
struct AnalyzedQuery {
  Query ast;
  int num_streams = 1;
  std::vector<const CatalogEntry*> entries;
  /// Combined input layout: stream0 fields then stream1 fields; names
  /// prefixed with "<alias>_" when ambiguous across streams.
  Schema combined;
  std::vector<FieldDomain> combined_domains;
  /// Offset of each stream's fields in the combined layout.
  std::vector<int> stream_offset;

  /// WHERE split into conjuncts, each classified by the streams it
  /// references. For 2-stream queries, equality conjuncts across streams
  /// become the join condition.
  std::vector<ExprRef> left_only;    // Over stream 0's own schema.
  std::vector<ExprRef> right_only;   // Over stream 1's own schema.
  std::vector<ExprRef> residual;     // Over the combined layout.
  std::vector<int> join_left_cols;   // Stream-0 column indexes.
  std::vector<int> join_right_cols;  // Stream-1 column indexes.

  /// Grouping: plain combined-layout columns...
  std::vector<int> group_cols;
  /// ...plus at most one `ordering/K` window expression.
  int64_t tumbling_size = 0;
  bool has_group_by = false;

  /// Aggregates in canonical order (SELECT order, then HAVING-only).
  std::vector<ResolvedAgg> aggs;
  bool has_aggregates = false;

  /// [ABB+02] verdict for the query.
  MemoryAnalysis memory;
};

/// Resolves and validates a parsed query against the catalog.
Result<AnalyzedQuery> Analyze(const Query& query, const Catalog& catalog);

/// Lowers an AST scalar expression to an executable Expr over `schema`,
/// resolving identifiers by (optional) qualifier and name.
/// `alias_of_stream[i]` names stream i; `offset[i]` is its first column.
Result<ExprRef> LowerExpr(const AstExprRef& ast,
                          const std::vector<std::string>& aliases,
                          const std::vector<SchemaRef>& schemas,
                          const std::vector<int>& offsets);

}  // namespace cql
}  // namespace sqp

#endif  // SQP_CQL_ANALYZER_H_
