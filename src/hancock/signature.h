#ifndef SQP_HANCOCK_SIGNATURE_H_
#define SQP_HANCOCK_SIGNATURE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace sqp {
namespace hancock {

/// A persistent per-entity signature collection — Hancock's `data<:pn:>`
/// map (slide 8). Signatures are fixed-arity vectors of doubles (e.g.
/// cumulative toll-free seconds, intl call rate), updated per block by
/// exponential blending:
///     sig' = alpha * observation + (1 - alpha) * sig.
///
/// The store stands in for Hancock's disk-resident signature files; it
/// tracks an I/O model (reads/writes of signature records) so the
/// tutorial's "I/O-efficient block processing" lesson (slides 6, 56) is
/// measurable: sorted block processing touches each signature once per
/// block, unsorted per-call processing touches it per call.
class SignatureStore {
 public:
  /// `arity`: doubles per signature; `alpha`: blend factor in (0, 1].
  SignatureStore(size_t arity, double alpha);

  /// Reads an entity's signature (zeros if absent). Counts one read.
  std::vector<double> Get(int64_t entity);

  /// Blends `observation` into the entity's signature. Counts one read
  /// and one write.
  void Blend(int64_t entity, const std::vector<double>& observation);

  /// Overwrites without blending (initial load). Counts one write.
  void Put(int64_t entity, std::vector<double> sig);

  bool Contains(int64_t entity) const { return sigs_.count(entity) > 0; }
  size_t size() const { return sigs_.size(); }
  size_t arity() const { return arity_; }
  double alpha() const { return alpha_; }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }

  /// Deviation of an observation from the stored signature: normalized
  /// L1 distance, the fraud-alert score of the AT&T application.
  double Deviation(int64_t entity, const std::vector<double>& observation);

 private:
  size_t arity_;
  double alpha_;
  std::unordered_map<int64_t, std::vector<double>> sigs_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace hancock
}  // namespace sqp

#endif  // SQP_HANCOCK_SIGNATURE_H_
