#include "hancock/signature.h"

#include <cassert>
#include <cmath>

namespace sqp {
namespace hancock {

SignatureStore::SignatureStore(size_t arity, double alpha)
    : arity_(arity), alpha_(alpha) {
  assert(arity > 0);
  assert(alpha > 0.0 && alpha <= 1.0);
}

std::vector<double> SignatureStore::Get(int64_t entity) {
  ++reads_;
  auto it = sigs_.find(entity);
  if (it == sigs_.end()) return std::vector<double>(arity_, 0.0);
  return it->second;
}

void SignatureStore::Blend(int64_t entity, const std::vector<double>& obs) {
  assert(obs.size() == arity_);
  ++reads_;
  ++writes_;
  auto it = sigs_.find(entity);
  if (it == sigs_.end()) {
    sigs_.emplace(entity, obs);
    return;
  }
  for (size_t i = 0; i < arity_; ++i) {
    it->second[i] = alpha_ * obs[i] + (1.0 - alpha_) * it->second[i];
  }
}

void SignatureStore::Put(int64_t entity, std::vector<double> sig) {
  assert(sig.size() == arity_);
  ++writes_;
  sigs_[entity] = std::move(sig);
}

double SignatureStore::Deviation(int64_t entity,
                                 const std::vector<double>& obs) {
  assert(obs.size() == arity_);
  ++reads_;
  auto it = sigs_.find(entity);
  if (it == sigs_.end()) return 0.0;  // No history: nothing to deviate from.
  double dev = 0.0;
  for (size_t i = 0; i < arity_; ++i) {
    double base = std::fabs(it->second[i]) + 1.0;  // Normalize, avoid /0.
    dev += std::fabs(obs[i] - it->second[i]) / base;
  }
  return dev / static_cast<double>(arity_);
}

}  // namespace hancock
}  // namespace sqp
