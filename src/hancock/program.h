#ifndef SQP_HANCOCK_PROGRAM_H_
#define SQP_HANCOCK_PROGRAM_H_

#include <functional>
#include <vector>

#include "common/tuple.h"
#include "exec/expr.h"

namespace sqp {
namespace hancock {

/// The Hancock iterate-clause event hierarchy (slide 8):
///
///   iterate (over calls sortedby origin filteredby pred
///            withevents originDetect) {
///     event line_begin(pn) {...}
///     event call(c)        {...}
///     event line_end(pn)   {...}
///   }
///
/// `SignatureProgram` replays that paradigm over in-memory blocks:
/// stream-in, relation-out, block processing with multiple passes
/// (slides 18, 21): `RunBlock` sorts a block by the key column, applies
/// the filter, and fires line_begin / call / line_end around each run of
/// equal keys.
class SignatureProgram {
 public:
  struct Events {
    std::function<void(int64_t key)> line_begin;
    std::function<void(const Tuple& t)> call;
    std::function<void(int64_t key)> line_end;
  };

  /// `key_col`: the sortedby column (must hold ints). `filter`: the
  /// filteredby predicate (nullptr = keep all).
  SignatureProgram(int key_col, ExprRef filter);

  /// Processes one block: sort, filter, fire events.
  void RunBlock(std::vector<TupleRef> block, const Events& events) const;

  /// Number of key runs (lines) seen across all blocks so far.
  uint64_t lines_processed() const { return lines_; }
  uint64_t calls_processed() const { return calls_; }

 private:
  int key_col_;
  ExprRef filter_;
  mutable uint64_t lines_ = 0;
  mutable uint64_t calls_ = 0;
};

}  // namespace hancock
}  // namespace sqp

#endif  // SQP_HANCOCK_PROGRAM_H_
