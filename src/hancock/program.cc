#include "hancock/program.h"

#include <algorithm>

namespace sqp {
namespace hancock {

SignatureProgram::SignatureProgram(int key_col, ExprRef filter)
    : key_col_(key_col), filter_(std::move(filter)) {}

void SignatureProgram::RunBlock(std::vector<TupleRef> block,
                                const Events& events) const {
  // sortedby: stable so calls within a line keep stream order.
  std::stable_sort(block.begin(), block.end(),
                   [this](const TupleRef& a, const TupleRef& b) {
                     return a->at(static_cast<size_t>(key_col_)) <
                            b->at(static_cast<size_t>(key_col_));
                   });

  bool line_open = false;
  int64_t current_key = 0;
  for (const TupleRef& t : block) {
    // filteredby.
    if (filter_ != nullptr && !Truthy(filter_->Eval(*t))) continue;
    int64_t key = t->at(static_cast<size_t>(key_col_)).ToInt();
    if (!line_open || key != current_key) {
      if (line_open && events.line_end) events.line_end(current_key);
      current_key = key;
      line_open = true;
      ++lines_;
      if (events.line_begin) events.line_begin(key);
    }
    ++calls_;
    if (events.call) events.call(*t);
  }
  if (line_open && events.line_end) events.line_end(current_key);
}

}  // namespace hancock
}  // namespace sqp
