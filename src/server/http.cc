#include "server/http.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>

namespace sqp {
namespace server {

namespace {

int HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Case-insensitive ASCII prefix match for header names.
bool HeaderIs(const std::string& line, const char* name) {
  size_t n = 0;
  while (name[n] != '\0') {
    if (n >= line.size()) return false;
    char a = line[n];
    char b = name[n];
    if (a >= 'A' && a <= 'Z') a = static_cast<char>(a - 'A' + 'a');
    if (b >= 'A' && b <= 'Z') b = static_cast<char>(b - 'A' + 'a');
    if (a != b) return false;
    ++n;
  }
  return true;
}

}  // namespace

const std::string* HttpRequest::Param(const std::string& key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

int64_t HttpRequest::ParamInt(const std::string& key, int64_t def) const {
  const std::string* v = Param(key);
  if (v == nullptr || v->empty()) return def;
  errno = 0;
  char* end = nullptr;
  long long n = std::strtoll(v->c_str(), &end, 10);
  if (errno != 0 || end == v->c_str() || *end != '\0') return def;
  return static_cast<int64_t>(n);
}

const char* HttpStatusText(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 429:
      return "Too Many Requests";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

bool SendAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string UrlDecode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size() && HexVal(s[i + 1]) >= 0 &&
               HexVal(s[i + 2]) >= 0) {
      out.push_back(
          static_cast<char>(HexVal(s[i + 1]) * 16 + HexVal(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

bool ParseHttpHead(const std::string& head, HttpRequest* req,
                   size_t* content_length) {
  *req = HttpRequest();
  *content_length = 0;

  size_t line_end = head.find('\n');
  std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') line.pop_back();

  size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) return false;
  size_t sp2 = line.find(' ', sp1 + 1);
  req->method = line.substr(0, sp1);
  req->target = sp2 == std::string::npos
                    ? line.substr(sp1 + 1)
                    : line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (req->target.empty()) return false;

  size_t qmark = req->target.find('?');
  req->path = req->target.substr(0, qmark);
  if (qmark != std::string::npos) {
    const std::string qs = req->target.substr(qmark + 1);
    size_t pos = 0;
    while (pos <= qs.size()) {
      size_t amp = qs.find('&', pos);
      std::string pair = qs.substr(
          pos, amp == std::string::npos ? std::string::npos : amp - pos);
      if (!pair.empty()) {
        size_t eq = pair.find('=');
        if (eq == std::string::npos) {
          req->params.emplace_back(UrlDecode(pair), "");
        } else {
          req->params.emplace_back(UrlDecode(pair.substr(0, eq)),
                                   UrlDecode(pair.substr(eq + 1)));
        }
      }
      if (amp == std::string::npos) break;
      pos = amp + 1;
    }
  }

  // Scan headers for Content-Length (the only one the tree acts on).
  size_t pos = line_end == std::string::npos ? head.size() : line_end + 1;
  while (pos < head.size()) {
    size_t end = head.find('\n', pos);
    std::string hline = head.substr(
        pos, end == std::string::npos ? std::string::npos : end - pos);
    if (!hline.empty() && hline.back() == '\r') hline.pop_back();
    if (hline.empty()) break;
    if (HeaderIs(hline, "content-length:")) {
      const char* v = hline.c_str() + 15;
      while (*v == ' ' || *v == '\t') ++v;
      errno = 0;
      char* endp = nullptr;
      long long n = std::strtoll(v, &endp, 10);
      if (errno == 0 && endp != v && n >= 0) {
        *content_length = static_cast<size_t>(n);
      }
    }
    if (end == std::string::npos) break;
    pos = end + 1;
  }
  return true;
}

bool ReadHttpRequest(int fd, HttpRequest* req, size_t max_head,
                     size_t max_body) {
  std::string buf;
  char chunk[1024];
  size_t head_end = std::string::npos;
  size_t body_start = 0;
  for (;;) {
    head_end = buf.find("\r\n\r\n");
    if (head_end != std::string::npos) {
      body_start = head_end + 4;
      break;
    }
    head_end = buf.find("\n\n");
    if (head_end != std::string::npos) {
      body_start = head_end + 2;
      break;
    }
    // The size cap applies only after a failed search: a head whose
    // terminator arrives in the recv that reaches the cap is complete
    // and within it.
    if (buf.size() >= max_head) return false;  // Head too large.
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // Timeout/EOF before a complete head.
    }
    buf.append(chunk, static_cast<size_t>(n));
  }

  size_t content_length = 0;
  if (!ParseHttpHead(buf.substr(0, head_end), req, &content_length)) {
    return false;
  }
  if (content_length > max_body) return false;

  std::string body = buf.substr(body_start);
  while (body.size() < content_length) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // Timeout/EOF mid-body.
    }
    body.append(chunk, static_cast<size_t>(n));
  }
  body.resize(content_length);
  req->body = std::move(body);
  return true;
}

bool WriteHttpResponse(int fd, int code, const std::string& content_type,
                       const std::string& body, bool head_only) {
  std::string head = "HTTP/1.0 " + std::to_string(code) + " " +
                     HttpStatusText(code) +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (!SendAll(fd, head.data(), head.size())) return false;
  if (head_only) return true;
  return SendAll(fd, body.data(), body.size());
}

bool ChunkedWriter::Begin(int code, const std::string& content_type) {
  if (!ok_) return false;
  std::string head = "HTTP/1.1 " + std::to_string(code) + " " +
                     HttpStatusText(code) +
                     "\r\nContent-Type: " + content_type +
                     "\r\nTransfer-Encoding: chunked"
                     "\r\nConnection: close\r\n\r\n";
  ok_ = SendAll(fd_, head.data(), head.size());
  return ok_;
}

bool ChunkedWriter::Write(const std::string& data) {
  if (!ok_ || data.empty()) return ok_;
  char size_line[32];
  int n = std::snprintf(size_line, sizeof(size_line), "%zx\r\n", data.size());
  ok_ = SendAll(fd_, size_line, static_cast<size_t>(n)) &&
        SendAll(fd_, data.data(), data.size()) && SendAll(fd_, "\r\n", 2);
  return ok_;
}

bool ChunkedWriter::End() {
  if (!ok_) return false;
  ok_ = SendAll(fd_, "0\r\n\r\n", 5);
  return ok_;
}

bool SplitHttpResponse(const std::string& raw, std::string* head,
                       std::string* body) {
  size_t pos = raw.find("\r\n\r\n");
  size_t skip = 4;
  if (pos == std::string::npos) {
    pos = raw.find("\n\n");
    skip = 2;
  }
  if (pos == std::string::npos) return false;
  *head = raw.substr(0, pos);
  *body = raw.substr(pos + skip);
  return true;
}

std::string DechunkBody(const std::string& head, const std::string& body) {
  // Only dechunk when the head says so; otherwise pass through.
  std::string lower;
  lower.reserve(head.size());
  for (char c : head) {
    lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a')
                                         : c);
  }
  if (lower.find("transfer-encoding: chunked") == std::string::npos) {
    return body;
  }
  std::string out;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t line_end = body.find("\r\n", pos);
    if (line_end == std::string::npos) break;
    unsigned long long size =
        std::strtoull(body.substr(pos, line_end - pos).c_str(), nullptr, 16);
    if (size == 0) break;
    pos = line_end + 2;
    if (pos + size > body.size()) {
      out.append(body, pos, body.size() - pos);  // Truncated tail chunk.
      break;
    }
    out.append(body, pos, size);
    pos += size + 2;  // Skip the chunk's trailing CRLF.
  }
  return out;
}

}  // namespace server
}  // namespace sqp
