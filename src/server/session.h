#ifndef SQP_SERVER_SESSION_H_
#define SQP_SERVER_SESSION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/tuple.h"

namespace sqp {

class QueryHandle;

namespace server {

/// Full-queue behavior of one session's result queue.
enum class SessionOverflow {
  /// Producer (the engine's delivery thread) waits up to block_ms for
  /// the client to acknowledge rows, then drops — bounded backpressure.
  kBlock,
  /// Producer drops the arriving row immediately (tail drop) and counts
  /// it: a slow client loses fresh rows but never stalls the engine.
  kDrop,
};

struct ResultQueueOptions {
  /// Unacknowledged rows retained per client.
  size_t limit = 1024;
  SessionOverflow overflow = SessionOverflow::kBlock;
  /// kBlock: longest a full queue stalls the producer before dropping
  /// anyway (a detached client must not wedge ingest forever). 0 waits
  /// indefinitely.
  int block_ms = 5000;
};

/// One result row awaiting delivery: a contiguous sequence number (the
/// cursor domain) plus the tuple itself.
struct SessionRow {
  uint64_t seq = 0;
  TupleRef tuple;
  /// {"ts":...,"row":[...]} fragment, rendered once at enqueue (off the
  /// queue lock): re-polls, reattaches at an old cursor, and repeated
  /// long-poll rounds re-send the cached bytes instead of re-encoding
  /// the tuple each time.
  std::string json;
};

/// The bounded per-client output queue between one standing query's sink
/// and the HTTP delivery path, with cursor-acknowledged retention:
///
///   - The producer appends rows with contiguous seq numbers (dropped
///     rows never consume a seq, so the stored stream has no holes).
///   - Rows are retained until the client ACKNOWLEDGES them by asking
///     for a higher cursor (Ack), so a client that detaches mid-stream
///     and reattaches at its last processed seq observes no gaps and no
///     duplicates.
///   - Capacity counts unacknowledged rows. At the limit the producer
///     blocks (bounded by block_ms) or tail-drops, per options.
///
/// Thread model: one producer (whichever thread drives the query's
/// sink), any number of reader threads (HTTP connections — typically one
/// at a time per client, but nothing breaks if a client overlaps).
class ResultQueue {
 public:
  explicit ResultQueue(ResultQueueOptions options);

  /// Appends one row. Returns false when the row was dropped (queue full
  /// past the block deadline, or queue closed).
  bool Push(const TupleRef& tuple);

  /// Marks end-of-stream: readers drain what is queued, then see
  /// finished. Idempotent.
  void Finish();

  /// Teardown: unblocks every waiter (producers and readers) and drops
  /// all further pushes. Idempotent.
  void Close();

  /// Acknowledges rows below `cursor`: trims them, frees capacity, wakes
  /// blocked producers.
  void Ack(uint64_t cursor);

  struct Wait {
    std::vector<SessionRow> rows;  // Rows with seq >= the requested cursor.
    bool finished = false;         // No row >= cursor will ever exist.
    bool closed = false;
    bool full = false;  // Queue at capacity (a blocked producer is likely).
  };
  /// Copies out up to `max_rows` rows with seq >= `cursor`, waiting until
  /// `deadline` for at least one to exist. Does not trim — trimming is
  /// the client's explicit Ack. `finished` is set only once the queue is
  /// finished AND drained past `cursor`.
  Wait WaitRows(uint64_t cursor, size_t max_rows,
                std::chrono::steady_clock::time_point deadline);

  // Counters (atomics: read by the metrics collector off-thread).
  uint64_t produced() const {
    return produced_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t acked() const { return acked_.load(std::memory_order_relaxed); }
  size_t depth() const { return depth_.load(std::memory_order_relaxed); }
  /// Rows produced but not yet acknowledged — the client's lag.
  uint64_t lag() const {
    uint64_t p = produced();
    uint64_t a = acked();
    return p > a ? p - a : 0;
  }
  uint64_t next_seq() const {
    return next_seq_.load(std::memory_order_relaxed);
  }
  bool finished() const { return finished_.load(std::memory_order_relaxed); }
  bool closed() const { return closed_.load(std::memory_order_relaxed); }

  const ResultQueueOptions& options() const { return options_; }

 private:
  ResultQueueOptions options_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;   // Producer waits (kBlock).
  std::condition_variable not_empty_;  // Readers wait (long-poll).
  std::deque<SessionRow> rows_;        // Unacked rows, seq-contiguous.

  std::atomic<uint64_t> next_seq_{0};
  std::atomic<uint64_t> produced_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> acked_{0};
  std::atomic<size_t> depth_{0};
  std::atomic<bool> finished_{false};
  std::atomic<bool> closed_{false};
};

/// JSON rendering for result delivery: one Value ("42", "3.5", "\"abc\"",
/// "null") and one tuple as {"ts":T,"row":[...]} fragments. The Append
/// forms build into an existing buffer (reserving capacity up front)
/// so batch encoding pays no per-value temporary strings; the returning
/// forms delegate to them.
void AppendValueJson(const Value& v, std::string* out);
void AppendRowJson(const Tuple& t, std::string* out);
std::string ValueJson(const Value& v);
std::string RowJson(const Tuple& t);

/// One client's standing query: the session id, the engine-side handle,
/// and the bounded result queue its output callback feeds.
struct Session {
  std::string id;
  std::string query_text;
  std::string schema;
  std::string plan;
  std::string policy;  // "block" | "drop" | "shed" (as admitted).
  QueryHandle* handle = nullptr;  // Engine-owned; null after removal.
  ResultQueue queue;
  std::atomic<bool> removed{false};  // Engine-side teardown done.

  Session(std::string id_in, std::string query_in, ResultQueueOptions qopts)
      : id(std::move(id_in)),
        query_text(std::move(query_in)),
        queue(qopts) {}

  /// {"session":...,"query":...,...} status document (the GET
  /// /session/<id> payload). `shed_rate`/`shed_dropped` < 0 omit the
  /// shedding fields.
  std::string InfoJson(double shed_rate, uint64_t shed_dropped) const;
};

}  // namespace server
}  // namespace sqp

#endif  // SQP_SERVER_SESSION_H_
