#ifndef SQP_SERVER_QUERY_SERVER_H_
#define SQP_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/admission.h"
#include "server/http.h"
#include "server/net_listener.h"
#include "server/session.h"

namespace sqp {

class StreamEngine;

namespace obs {
class SnapshotBuilder;
}  // namespace obs

namespace server {

struct QueryServerOptions {
  /// Caps on concurrent queries / total retained rows (HTTP 429 beyond).
  AdmissionOptions admission;
  /// Socket behavior. The defaults here override NetListenerOptions':
  /// concurrent handling (one thread per streaming client) with a
  /// connection cap, and a long send timeout (a long-poll response can
  /// legitimately sit idle while the client catches up).
  NetListenerOptions listener = MakeListenerDefaults();
  /// Per-session queue defaults; clients override per query via
  /// ?queue=&policy=&block_ms=.
  ResultQueueOptions queue;
  /// Long-poll bounds for GET /session/<id>/results: default and maximum
  /// ?wait_ms=, and the row batch copied out per queue wait.
  int default_wait_ms = 1000;
  int max_wait_ms = 30000;
  /// Upper bound on a client-supplied ?block_ms=. HTTP clients are always
  /// clamped to [1, max_block_ms]: block_ms = 0 (wait indefinitely) is
  /// reserved for in-process callers, since over HTTP it would let one
  /// detached client wedge the engine's delivery thread forever.
  int max_block_ms = 60000;
  size_t rows_per_batch = 256;

  static NetListenerOptions MakeListenerDefaults() {
    NetListenerOptions o;
    o.max_concurrent = 128;
    o.recv_timeout_ms = 5000;
    o.send_timeout_ms = 10000;
    o.overflow_response =
        "HTTP/1.0 503 Service Unavailable\r\n"
        "Content-Type: application/json\r\nContent-Length: 33\r\n"
        "Connection: close\r\n\r\n"
        "{\"error\":\"too many connections\"}\n";
    return o;
  }
};

/// The multi-client continuous-query front door: an HTTP endpoint where
/// clients register standing CQL queries against a running StreamEngine
/// and stream their results back.
///
///   POST /query?queue=N&policy=block|drop|shed&block_ms=M  (body: CQL)
///       -> 200 {"session":"s0",...} | 400 parse error | 429 admission
///   GET  /session/<id>/results?cursor=C&max=N&wait_ms=W
///       -> chunked NDJSON: one {"seq":..,"ts":..,"row":[..]} line per
///          row (seq >= C), closed by a {"next_cursor":..,"finished":..}
///          trailer. Passing cursor=C acknowledges every row below C, so
///          re-requesting from the last processed seq after a detach
///          resumes with no gaps and no duplicates.
///   GET  /session/<id>        -> status document
///   GET  /session/<id>/profile[?format=text]
///       -> EXPLAIN ANALYZE for the session's query: the annotated plan
///          tree with per-operator rows, selectivity, busy time, and
///          watermark lag (JSON by default, text with ?format=text)
///   DELETE /session/<id>      -> tear the query down (also POST
///                                /session/<id>/close)
///   GET  /events.json?after=&max=  -> engine structured event log
///   GET  /sessions, /stats, /healthz, /
///
/// Teardown ordering (the no-deadlock contract with StreamEngine): a
/// session's queue is Close()d — unblocking any producer stuck in a full
/// kBlock queue — before StreamEngine::Remove flushes the query under
/// the exclusive registration lock.
class QueryServer {
 public:
  QueryServer(StreamEngine* engine, QueryServerOptions options = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds and serves on `port` (0 = ephemeral). Also registers the
  /// "server" collector in the engine's metrics registry.
  Status Start(int port);

  /// Stops the listener and closes every session queue WITHOUT touching
  /// the engine (callable from the engine's own destructor). Idempotent.
  void Stop();

  /// Marks every session's queue finished — call after
  /// StreamEngine::FinishAll so streaming clients see the final rows and
  /// then a finished trailer instead of waiting forever.
  void FinishSessions();

  bool serving() const { return listener_.serving(); }
  int port() const { return listener_.port(); }
  size_t num_sessions() const;
  const AdmissionController& admission() const { return admission_; }
  const NetListener& listener() const { return listener_; }
  uint64_t rows_delivered() const {
    return rows_delivered_.load(std::memory_order_relaxed);
  }

 private:
  void HandleConnection(int fd);

  // Route handlers. Those returning a Response are plain
  // request/response; streaming results write to the fd directly.
  struct Response {
    int code = 200;
    std::string content_type = "application/json";
    std::string body;
  };
  Response HandleSubmit(const HttpRequest& req);
  Response HandleSessionInfo(const std::string& id);
  Response HandleSessionProfile(const std::string& id,
                                const HttpRequest& req);
  Response HandleSessionClose(const std::string& id);
  Response HandleEvents(const HttpRequest& req);
  Response HandleSessions();
  Response HandleStats();
  Response HandleRoot();
  void HandleResults(int fd, const std::string& id, const HttpRequest& req);

  std::shared_ptr<Session> FindSession(const std::string& id) const;
  /// Removes the session from the map and, when `remove_query` is true,
  /// tears its query down against the engine. Only the caller that wins
  /// the map erase performs teardown. Returns false when `id` is unknown.
  bool CloseSession(const std::string& id, bool remove_query);
  std::string SessionInfo(const Session& s) const;
  void PublishMetrics(obs::SnapshotBuilder& b) const;

  StreamEngine* engine_;
  QueryServerOptions options_;
  NetListener listener_;
  AdmissionController admission_;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  uint64_t session_seq_ = 0;
  bool collector_registered_ = false;

  std::atomic<uint64_t> rows_delivered_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace server
}  // namespace sqp

#endif  // SQP_SERVER_QUERY_SERVER_H_
