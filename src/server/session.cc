#include "server/session.h"

#include <cmath>
#include <cstdio>

#include "arch/engine.h"
#include "obs/snapshot.h"

namespace sqp {
namespace server {

ResultQueue::ResultQueue(ResultQueueOptions options) : options_(options) {
  if (options_.limit == 0) options_.limit = 1;
}

bool ResultQueue::Push(const TupleRef& tuple) {
  // Render outside the lock: encoding cost lands on the producer once
  // per row instead of on every reader poll, and never stalls readers.
  std::string json;
  AppendRowJson(*tuple, &json);
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_.load(std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (rows_.size() >= options_.limit) {
    if (options_.overflow == SessionOverflow::kBlock) {
      auto pred = [this] {
        return rows_.size() < options_.limit ||
               closed_.load(std::memory_order_relaxed);
      };
      if (options_.block_ms > 0) {
        not_full_.wait_for(lock, std::chrono::milliseconds(options_.block_ms),
                           pred);
      } else {
        not_full_.wait(lock, pred);
      }
    }
    if (rows_.size() >= options_.limit ||
        closed_.load(std::memory_order_relaxed)) {
      // Still full past the deadline (or torn down meanwhile): tail-drop
      // so a detached client cannot wedge the engine's delivery thread.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  SessionRow row;
  row.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  row.tuple = tuple;
  row.json = std::move(json);
  rows_.push_back(std::move(row));
  depth_.store(rows_.size(), std::memory_order_relaxed);
  produced_.fetch_add(1, std::memory_order_relaxed);
  not_empty_.notify_all();
  return true;
}

void ResultQueue::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  finished_.store(true, std::memory_order_relaxed);
  not_empty_.notify_all();
}

void ResultQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_.store(true, std::memory_order_relaxed);
  finished_.store(true, std::memory_order_relaxed);
  not_full_.notify_all();
  not_empty_.notify_all();
}

void ResultQueue::Ack(uint64_t cursor) {
  std::lock_guard<std::mutex> lock(mu_);
  bool trimmed = false;
  while (!rows_.empty() && rows_.front().seq < cursor) {
    rows_.pop_front();
    trimmed = true;
  }
  if (trimmed) {
    depth_.store(rows_.size(), std::memory_order_relaxed);
    uint64_t base = rows_.empty() ? next_seq_.load(std::memory_order_relaxed)
                                  : rows_.front().seq;
    // acked = rows the client will never be re-sent. Monotonic: a replay
    // of an old cursor trims nothing and moves nothing backwards.
    uint64_t prev = acked_.load(std::memory_order_relaxed);
    uint64_t now = cursor < base ? cursor : base;
    if (now > prev) acked_.store(now, std::memory_order_relaxed);
    not_full_.notify_all();
  }
}

ResultQueue::Wait ResultQueue::WaitRows(
    uint64_t cursor, size_t max_rows,
    std::chrono::steady_clock::time_point deadline) {
  Wait out;
  std::unique_lock<std::mutex> lock(mu_);
  auto have_row = [this, cursor] {
    return (!rows_.empty() && rows_.back().seq >= cursor) ||
           finished_.load(std::memory_order_relaxed) ||
           closed_.load(std::memory_order_relaxed);
  };
  not_empty_.wait_until(lock, deadline, have_row);

  for (const SessionRow& row : rows_) {
    if (row.seq < cursor) continue;
    if (out.rows.size() >= max_rows) break;
    out.rows.push_back(row);
  }
  out.closed = closed_.load(std::memory_order_relaxed);
  out.full = rows_.size() >= options_.limit;
  // Finished only counts once the reader has seen everything: the query
  // is done AND no queued row at/after the cursor remains unreturned.
  if (finished_.load(std::memory_order_relaxed)) {
    uint64_t end = next_seq_.load(std::memory_order_relaxed);
    uint64_t last_returned =
        out.rows.empty() ? cursor : out.rows.back().seq + 1;
    out.finished = last_returned >= end;
  }
  return out;
}

void AppendValueJson(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kNull:
      *out += "null";
      return;
    case ValueType::kInt: {
      char buf[24];
      int n = std::snprintf(buf, sizeof(buf), "%lld",
                            static_cast<long long>(v.AsInt()));
      out->append(buf, static_cast<size_t>(n));
      return;
    }
    case ValueType::kDouble: {
      const double d = v.AsDouble();
      // %.17g renders NaN/Infinity as "nan"/"inf" — not JSON. null is.
      if (!std::isfinite(d)) {
        *out += "null";
        return;
      }
      char buf[32];
      int n = std::snprintf(buf, sizeof(buf), "%.17g", d);
      out->append(buf, static_cast<size_t>(n));
      return;
    }
    case ValueType::kString:
      out->push_back('"');
      *out += obs::JsonEscape(v.AsString());
      out->push_back('"');
      return;
  }
  *out += "null";
}

void AppendRowJson(const Tuple& t, std::string* out) {
  // ~14 bytes covers a typical numeric cell with its comma; strings
  // grow the buffer once more at worst.
  out->reserve(out->size() + 16 + 14 * t.arity());
  *out += "\"ts\":";
  *out += std::to_string(t.ts());
  *out += ",\"row\":[";
  for (size_t i = 0; i < t.arity(); ++i) {
    if (i > 0) out->push_back(',');
    AppendValueJson(t.at(i), out);
  }
  out->push_back(']');
}

std::string ValueJson(const Value& v) {
  std::string out;
  AppendValueJson(v, &out);
  return out;
}

std::string RowJson(const Tuple& t) {
  std::string out;
  AppendRowJson(t, &out);
  return out;
}

std::string Session::InfoJson(double shed_rate, uint64_t shed_dropped) const {
  std::string out = "{\"session\":\"" + obs::JsonEscape(id) + "\"";
  out += ",\"query\":\"" + obs::JsonEscape(query_text) + "\"";
  out += ",\"schema\":\"" + obs::JsonEscape(schema) + "\"";
  out += ",\"plan\":\"" + obs::JsonEscape(plan) + "\"";
  out += ",\"policy\":\"" + policy + "\"";
  out += ",\"queue_limit\":" + std::to_string(queue.options().limit);
  out += ",\"rows\":" + std::to_string(queue.produced());
  out += ",\"acked\":" + std::to_string(queue.acked());
  out += ",\"dropped\":" + std::to_string(queue.dropped());
  out += ",\"queue_depth\":" + std::to_string(queue.depth());
  out += ",\"lag\":" + std::to_string(queue.lag());
  out += ",\"next_cursor\":" + std::to_string(queue.next_seq());
  out += std::string(",\"finished\":") +
         (queue.finished() ? "true" : "false");
  if (shed_rate >= 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", shed_rate);
    out += std::string(",\"shed_rate\":") + buf;
    out += ",\"shed_dropped\":" + std::to_string(shed_dropped);
  }
  out += "}";
  return out;
}

}  // namespace server
}  // namespace sqp
