#ifndef SQP_SERVER_NET_LISTENER_H_
#define SQP_SERVER_NET_LISTENER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace sqp {
namespace server {

/// Tuning for one NetListener.
struct NetListenerOptions {
  /// listen(2) backlog: connections the kernel queues while we are busy.
  int backlog = 64;
  /// Per-connection socket timeouts (SO_RCVTIMEO / SO_SNDTIMEO), applied
  /// to every accepted fd before the handler sees it: a stalled or
  /// malicious peer can wedge one read/write for at most this long,
  /// never a thread forever. <= 0 leaves the socket blocking.
  int recv_timeout_ms = 5000;
  int send_timeout_ms = 5000;
  /// 0: connections are handled sequentially on the accept thread (the
  /// metrics-exporter mode — one scraper, no concurrency needed).
  /// N > 0: each connection gets its own handler thread, at most N live
  /// at once; connections beyond the cap receive `overflow_response`
  /// (if non-empty) and are closed without ever reaching the handler.
  int max_concurrent = 0;
  /// Raw bytes (typically a pre-rendered HTTP 503) sent to a connection
  /// rejected by the cap. Empty = close silently.
  std::string overflow_response;
};

/// The one TCP accept/dispatch loop shared by every HTTP-ish endpoint in
/// the tree (obs::HttpExporter, server::QueryServer): binds a port,
/// accepts connections on a background thread, applies per-connection
/// timeouts and the concurrency cap, and hands each accepted fd to the
/// handler. The listener owns every fd it accepts — handlers read and
/// write but must NOT close; the fd is closed after the handler returns
/// (sequential mode) or when its thread is reaped (concurrent mode), so
/// Stop() can safely shutdown(2) in-flight connections without racing an
/// fd reuse.
class NetListener {
 public:
  using Handler = std::function<void(int fd)>;

  NetListener() = default;
  ~NetListener();

  NetListener(const NetListener&) = delete;
  NetListener& operator=(const NetListener&) = delete;

  /// Binds 0.0.0.0:`port` (0 = kernel-assigned ephemeral, see port())
  /// and starts the accept loop.
  Status Start(int port, Handler handler, NetListenerOptions options = {});

  /// Shuts down the listen socket and every in-flight connection, then
  /// joins the accept loop and all handler threads. Idempotent.
  void Stop();

  bool serving() const { return serving_.load(std::memory_order_acquire); }
  /// Bound port (0 resolved to the kernel's choice).
  int port() const { return port_; }

  /// Connections accepted and handed to the handler.
  uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  /// Connections rejected by the max_concurrent cap.
  uint64_t overflowed() const {
    return overflowed_.load(std::memory_order_relaxed);
  }
  /// Handler threads currently live (concurrent mode).
  int active_connections() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    std::thread thread;
    int fd = -1;
  };

  void AcceptLoop();
  /// Joins finished handler threads and closes their fds. Caller must
  /// hold mu_.
  void ReapLocked();

  Handler handler_;
  NetListenerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> serving_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> overflowed_{0};
  std::atomic<int> active_{0};
  std::thread accept_thread_;

  std::mutex mu_;                  // Guards conns_ / done_ids_.
  std::map<uint64_t, Conn> conns_; // Live + finished-but-unreaped.
  std::vector<uint64_t> done_ids_; // Finished handlers awaiting reap.
  uint64_t next_conn_id_ = 0;
};

}  // namespace server
}  // namespace sqp

#endif  // SQP_SERVER_NET_LISTENER_H_
