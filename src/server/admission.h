#ifndef SQP_SERVER_ADMISSION_H_
#define SQP_SERVER_ADMISSION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace sqp {
namespace server {

struct AdmissionOptions {
  /// Concurrent standing queries the server will host. 0 disables the cap.
  size_t max_sessions = 64;
  /// Total rows the server will retain across all session queues. A new
  /// session is rejected when admitting its queue limit would exceed this
  /// (the already-admitted sessions keep streaming). 0 disables the cap.
  size_t max_queued_rows = 1 << 20;
};

/// Decides whether a new continuous query may be admitted, given what is
/// already running. Sessions report their reserved queue capacity at
/// admit time and release it at teardown — the controller tracks
/// reservations, not instantaneous depth, so admission cannot flap as
/// queues drain.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options)
      : options_(options) {}

  struct Decision {
    bool admitted = false;
    std::string reason;  // "max_sessions" | "overloaded" when rejected.
  };

  /// Tries to admit one session reserving `queue_limit` rows. On success
  /// the reservation is held until Release is called with the same limit.
  Decision Admit(size_t queue_limit);

  /// Returns one session's reservation (teardown).
  void Release(size_t queue_limit);

  size_t sessions() const {
    return sessions_.load(std::memory_order_relaxed);
  }
  size_t reserved_rows() const {
    return reserved_rows_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
  std::atomic<size_t> sessions_{0};
  std::atomic<size_t> reserved_rows_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace server
}  // namespace sqp

#endif  // SQP_SERVER_ADMISSION_H_
