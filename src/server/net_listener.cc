#include "server/net_listener.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "server/http.h"

namespace sqp {
namespace server {

NetListener::~NetListener() { Stop(); }

Status NetListener::Start(int port, Handler handler,
                          NetListenerOptions options) {
  if (serving_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("listener is already serving");
  }
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port out of range: " +
                                   std::to_string(port));
  }
  if (!handler) {
    return Status::InvalidArgument("listener needs a connection handler");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, options.backlog > 0 ? options.backlog : 16) < 0) {
    Status st =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  handler_ = std::move(handler);
  options_ = options;
  listen_fd_ = fd;
  accepted_.store(0, std::memory_order_relaxed);
  overflowed_.store(0, std::memory_order_relaxed);
  stop_requested_.store(false, std::memory_order_relaxed);
  serving_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void NetListener::Stop() {
  if (!serving_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  // shutdown() wakes the blocked accept(); close() alone may not.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Kick every in-flight connection off its socket so handlers blocked
  // in recv/send return promptly, then join and close them all. The fds
  // are still open (the listener owns them), so there is no reuse race.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, conn] : conns_) ::shutdown(conn.fd, SHUT_RDWR);
  }
  for (;;) {
    std::map<uint64_t, Conn> finished;
    {
      std::lock_guard<std::mutex> lock(mu_);
      finished.swap(conns_);
      done_ids_.clear();
    }
    if (finished.empty()) break;
    for (auto& [id, conn] : finished) {
      if (conn.thread.joinable()) conn.thread.join();
      ::close(conn.fd);
    }
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  serving_.store(false, std::memory_order_release);
}

void NetListener::ReapLocked() {
  for (uint64_t id : done_ids_) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    if (it->second.thread.joinable()) it->second.thread.join();
    ::close(it->second.fd);
    conns_.erase(it);
  }
  done_ids_.clear();
}

void NetListener::AcceptLoop() {
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listener shut down (or a hard error): exit the loop.
    }
    // Bound both directions before the handler ever touches the socket.
    if (options_.recv_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = options_.recv_timeout_ms / 1000;
      tv.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    if (options_.send_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = options_.send_timeout_ms / 1000;
      tv.tv_usec = (options_.send_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }

    if (options_.max_concurrent <= 0) {
      // Sequential mode: the accept thread is the handler thread.
      accepted_.fetch_add(1, std::memory_order_relaxed);
      handler_(fd);
      ::close(fd);
      continue;
    }

    std::lock_guard<std::mutex> lock(mu_);
    ReapLocked();
    if (active_.load(std::memory_order_relaxed) >= options_.max_concurrent) {
      overflowed_.fetch_add(1, std::memory_order_relaxed);
      if (!options_.overflow_response.empty()) {
        SendAll(fd, options_.overflow_response.data(),
                options_.overflow_response.size());
      }
      ::close(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_.fetch_add(1, std::memory_order_relaxed);
    uint64_t id = next_conn_id_++;
    Conn conn;
    conn.fd = fd;
    conn.thread = std::thread([this, fd, id] {
      handler_(fd);
      // Signal EOF to the peer now — close() itself waits for the reap
      // (so Stop() can never shutdown a reused fd number), but the peer
      // must not have to wait for the next accept to learn we're done.
      ::shutdown(fd, SHUT_RDWR);
      std::lock_guard<std::mutex> l(mu_);
      active_.fetch_sub(1, std::memory_order_relaxed);
      done_ids_.push_back(id);
    });
    conns_.emplace(id, std::move(conn));
  }
}

}  // namespace server
}  // namespace sqp
