#include "server/admission.h"

namespace sqp {
namespace server {

AdmissionController::Decision AdmissionController::Admit(size_t queue_limit) {
  Decision d;
  // Optimistically reserve, then back out on violation. Both caps are
  // checked against the post-reservation totals so concurrent admits
  // cannot jointly exceed a cap.
  size_t s = sessions_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options_.max_sessions > 0 && s > options_.max_sessions) {
    sessions_.fetch_sub(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    d.reason = "max_sessions";
    return d;
  }
  size_t r =
      reserved_rows_.fetch_add(queue_limit, std::memory_order_relaxed) +
      queue_limit;
  if (options_.max_queued_rows > 0 && r > options_.max_queued_rows) {
    reserved_rows_.fetch_sub(queue_limit, std::memory_order_relaxed);
    sessions_.fetch_sub(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    d.reason = "overloaded";
    return d;
  }
  d.admitted = true;
  return d;
}

void AdmissionController::Release(size_t queue_limit) {
  sessions_.fetch_sub(1, std::memory_order_relaxed);
  reserved_rows_.fetch_sub(queue_limit, std::memory_order_relaxed);
}

}  // namespace server
}  // namespace sqp
