// StreamEngine::Serve lives here, not in arch/engine.cc: the engine core
// must not depend on the server subsystem (which depends on the engine),
// so the bridge is compiled into sqp_server and only links when the
// server is linked.
#include "arch/engine.h"
#include "server/query_server.h"

namespace sqp {

Result<int> StreamEngine::Serve(int port) {
  return Serve(port, server::QueryServerOptions{});
}

Result<int> StreamEngine::Serve(int port,
                                const server::QueryServerOptions& options) {
  if (server_ != nullptr && server_->serving()) {
    return Status::AlreadyExists("query server already running on port " +
                                 std::to_string(server_->port()));
  }
  server_ = std::make_shared<server::QueryServer>(this, options);
  Status s = server_->Start(port);
  if (!s.ok()) {
    server_.reset();
    return s;
  }
  return server_->port();
}

}  // namespace sqp
