#ifndef SQP_SERVER_HTTP_H_
#define SQP_SERVER_HTTP_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sqp {
namespace server {

/// One parsed HTTP request: the request line split into method + target,
/// the target split into path + query parameters, and (for POST/PUT) the
/// body as delimited by Content-Length.
struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string target;   // Raw request target ("/query?policy=drop").
  std::string path;     // Target up to '?' ("/query").
  std::string body;     // Content-Length bytes (empty when none).
  std::vector<std::pair<std::string, std::string>> params;

  /// Value of the first query parameter named `key`, or nullptr.
  const std::string* Param(const std::string& key) const;
  /// Integer parameter with a default for missing/garbage values.
  int64_t ParamInt(const std::string& key, int64_t def) const;
};

/// Returns the reason phrase for the handful of codes the tree serves.
const char* HttpStatusText(int code);

/// Sends the whole buffer, tolerating short writes and EINTR. Returns
/// false on a hard error or send timeout (client went away / stalled).
bool SendAll(int fd, const char* data, size_t len);

/// Parses the head of a request (request line + headers, everything up
/// to the blank line). Fills method/target/path/params and returns the
/// Content-Length (0 when absent) via `content_length`. Returns false on
/// a malformed request line.
bool ParseHttpHead(const std::string& head, HttpRequest* req,
                   size_t* content_length);

/// Reads one full request (head + Content-Length body) from `fd`.
/// Returns false on timeout, EOF, malformed input, or a head/body larger
/// than the caps — the caller should just drop the connection.
bool ReadHttpRequest(int fd, HttpRequest* req, size_t max_head = 16384,
                     size_t max_body = 1 << 20);

/// Writes a complete HTTP/1.0 response with Content-Length and
/// Connection: close. `head_only` elides the body (HEAD requests).
bool WriteHttpResponse(int fd, int code, const std::string& content_type,
                       const std::string& body, bool head_only = false);

/// Incremental chunked (HTTP/1.1 Transfer-Encoding: chunked) response:
/// Begin writes the status line + headers, Write emits one chunk, End
/// terminates the stream. Every method returns false once the peer is
/// gone, after which the writer goes inert.
class ChunkedWriter {
 public:
  explicit ChunkedWriter(int fd) : fd_(fd) {}

  bool Begin(int code, const std::string& content_type);
  bool Write(const std::string& data);
  bool End();

  bool ok() const { return ok_; }

 private:
  int fd_;
  bool ok_ = true;
};

/// Percent-decodes %XX escapes and '+' (query-string convention).
std::string UrlDecode(const std::string& s);

/// Client-side helpers (sqpsh --connect, tests, benches): split a raw
/// response into head and body at the first blank line...
bool SplitHttpResponse(const std::string& raw, std::string* head,
                       std::string* body);
/// ...and reassemble a chunked body into the payload bytes. Non-chunked
/// input is returned unchanged.
std::string DechunkBody(const std::string& head, const std::string& body);

}  // namespace server
}  // namespace sqp

#endif  // SQP_SERVER_HTTP_H_
