#include "server/query_server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "arch/engine.h"
#include "obs/snapshot.h"

namespace sqp {
namespace server {

namespace {

std::string ErrorJson(const std::string& what, const std::string& detail) {
  std::string out = "{\"error\":\"" + obs::JsonEscape(what) + "\"";
  if (!detail.empty()) {
    out += ",\"reason\":\"" + obs::JsonEscape(detail) + "\"";
  }
  out += "}\n";
  return out;
}

}  // namespace

QueryServer::QueryServer(StreamEngine* engine, QueryServerOptions options)
    : engine_(engine),
      options_(options),
      admission_(options.admission) {}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start(int port) {
  if (listener_.serving()) {
    return Status::AlreadyExists("query server already started");
  }
  stopping_.store(false, std::memory_order_release);
  engine_->Metrics().AddCollector(
      "server", [this](obs::SnapshotBuilder& b) { PublishMetrics(b); });
  collector_registered_ = true;
  Status s = listener_.Start(
      port, [this](int fd) { HandleConnection(fd); }, options_.listener);
  if (!s.ok()) {
    engine_->Metrics().RemoveCollector("server");
    collector_registered_ = false;
  }
  return s;
}

void QueryServer::Stop() {
  // Order matters: close the session queues FIRST — a handler parked in
  // a long-poll WaitRows only wakes when its queue closes, and the
  // listener join below waits on that handler. Then stop the listener
  // (its fd shutdown kicks handlers blocked in recv/send), then detach
  // the metrics collector (RemoveCollector is a barrier against an
  // in-flight TakeSnapshot).
  stopping_.store(true, std::memory_order_release);
  std::vector<std::shared_ptr<Session>> rest;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, sess] : sessions_) rest.push_back(sess);
    sessions_.clear();
  }
  for (auto& sess : rest) {
    // No engine teardown here — Stop() may run inside the engine's own
    // destructor, after the queries are already gone.
    sess->handle = nullptr;
    sess->queue.Close();
    admission_.Release(sess->queue.options().limit);
  }
  listener_.Stop();
  if (collector_registered_) {
    engine_->Metrics().RemoveCollector("server");
    collector_registered_ = false;
  }
}

void QueryServer::FinishSessions() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, sess] : sessions_) sess->queue.Finish();
}

size_t QueryServer::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::shared_ptr<Session> QueryServer::FindSession(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

void QueryServer::HandleConnection(int fd) {
  HttpRequest req;
  if (!ReadHttpRequest(fd, &req)) return;  // Listener closes the fd.
  requests_.fetch_add(1, std::memory_order_relaxed);

  const std::string& p = req.path;
  // /session/<id>[/results | /close]
  if (p.rfind("/session/", 0) == 0) {
    std::string rest = p.substr(9);
    size_t slash = rest.find('/');
    std::string id = rest.substr(0, slash);
    std::string tail = slash == std::string::npos ? "" : rest.substr(slash);
    if (tail == "/results" && req.method == "GET") {
      HandleResults(fd, id, req);
      return;
    }
    Response r;
    if (tail.empty() && req.method == "GET") {
      r = HandleSessionInfo(id);
    } else if (tail == "/profile" && req.method == "GET") {
      r = HandleSessionProfile(id, req);
    } else if ((tail.empty() && req.method == "DELETE") ||
               (tail == "/close" && req.method == "POST")) {
      r = HandleSessionClose(id);
    } else {
      r = Response{405, "application/json",
                   ErrorJson("method not allowed", "")};
    }
    WriteHttpResponse(fd, r.code, r.content_type, r.body);
    return;
  }

  Response r;
  if (p == "/query" && req.method == "POST") {
    r = HandleSubmit(req);
  } else if (p == "/sessions" && req.method == "GET") {
    r = HandleSessions();
  } else if (p == "/events.json" && req.method == "GET") {
    r = HandleEvents(req);
  } else if (p == "/stats" && req.method == "GET") {
    r = HandleStats();
  } else if (p == "/healthz" && req.method == "GET") {
    r = Response{200, "text/plain; charset=utf-8", "ok\n"};
  } else if (p == "/" && req.method == "GET") {
    r = HandleRoot();
  } else {
    r = Response{404, "application/json", ErrorJson("not found", p)};
  }
  WriteHttpResponse(fd, r.code, r.content_type, r.body);
}

QueryServer::Response QueryServer::HandleSubmit(const HttpRequest& req) {
  if (req.body.empty()) {
    return {400, "application/json",
            ErrorJson("empty query", "POST the CQL text as the body")};
  }

  ResultQueueOptions qopts = options_.queue;
  int64_t limit = req.ParamInt("queue", static_cast<int64_t>(qopts.limit));
  qopts.limit = static_cast<size_t>(
      std::clamp<int64_t>(limit, 1, int64_t{1} << 20));
  // Clamp to a positive bound even when the client asked for 0 (or the
  // server default is 0): the indefinite wait is for in-process callers
  // only — see QueryServerOptions::max_block_ms.
  qopts.block_ms = static_cast<int>(std::clamp<int64_t>(
      req.ParamInt("block_ms", qopts.block_ms), 1,
      std::max(1, options_.max_block_ms)));

  std::string policy =
      qopts.overflow == SessionOverflow::kBlock ? "block" : "drop";
  if (const std::string* pol = req.Param("policy")) policy = *pol;
  if (policy == "block") {
    qopts.overflow = SessionOverflow::kBlock;
  } else if (policy == "drop" || policy == "shed") {
    // Shedding drops at the query's input; a blocking queue behind the
    // gate would fight the controller, so overflow tail-drops too.
    qopts.overflow = SessionOverflow::kDrop;
  } else {
    return {400, "application/json",
            ErrorJson("bad policy", "want block|drop|shed, got " + policy)};
  }

  const bool replay = req.ParamInt("replay", 0) != 0;
  if (replay && !engine_->durable()) {
    return {409, "application/json",
            ErrorJson("replay unavailable",
                      "the engine has no durable archive (start it with "
                      "--durable)")};
  }
  if (replay && qopts.overflow == SessionOverflow::kBlock) {
    // Replay pours the whole archive while holding the engine's
    // registration lock; a blocking result queue with no reader yet
    // would wedge the engine. Lossy policies drain safely.
    return {400, "application/json",
            ErrorJson("bad replay", "replay requires policy=drop or shed")};
  }

  AdmissionController::Decision adm = admission_.Admit(qopts.limit);
  if (!adm.admitted) {
    engine_->Events().Emit(obs::EventKind::kAdmissionRejected, "",
                           adm.reason);
    return {429, "application/json", ErrorJson("rejected", adm.reason)};
  }

  std::string id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = "s" + std::to_string(session_seq_++);
  }
  auto sess = std::make_shared<Session>(id, req.body, qopts);
  sess->policy = policy;

  SubmitOptions sopts;
  sopts.collect = false;
  // Captures the session (not the server): the callback lives inside the
  // engine's QueryHandle and may fire during engine teardown, after this
  // QueryServer is gone.
  sopts.on_result = [sess](const TupleRef& t) { sess->queue.Push(t); };
  Result<QueryHandle*> submitted = engine_->Submit(req.body, sopts);
  if (!submitted.ok()) {
    admission_.Release(qopts.limit);
    return {400, "application/json",
            ErrorJson("parse error", submitted.status().message())};
  }
  sess->handle = *submitted;
  sess->schema = sess->handle->output_schema().ToString();
  sess->plan = sess->handle->plan_desc();

  if (policy == "shed") {
    AdaptiveShedOptions shed;
    shed.controller.target_queue =
        std::max<double>(1.0, static_cast<double>(qopts.limit) / 2.0);
    shed.backlog_probe = [sess] { return sess->queue.depth(); };
    Status s = engine_->EnableAdaptiveShedding(sess->handle, shed);
    if (!s.ok()) {
      sess->queue.Close();
      engine_->Remove(sess->handle);
      sess->handle = nullptr;
      admission_.Release(qopts.limit);
      return {409, "application/json", ErrorJson("shed setup", s.message())};
    }
  }

  uint64_t replayed = 0;
  if (replay) {
    // New query over the archived past. Submit stamped the handle with
    // the archive position at registration, and ReplayInto stops there:
    // elements ingested between Submit and this call are delivered live
    // only, never replayed on top — no duplicates in the session.
    Result<uint64_t> poured = engine_->ReplayInto(sess->handle);
    if (!poured.ok()) {
      sess->queue.Close();
      engine_->Remove(sess->handle);
      sess->handle = nullptr;
      admission_.Release(qopts.limit);
      return {409, "application/json",
              ErrorJson("replay", poured.status().message())};
    }
    replayed = *poured;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_[id] = sess;
  }
  // A submit racing Stop() could land after the shutdown sweep cleared
  // the map; re-check and undo so nothing leaks past teardown.
  if (stopping_.load(std::memory_order_acquire)) {
    if (!CloseSession(id, /*remove_query=*/true)) {
      // Stop's sweep won the erase: it closed the queue and released the
      // admission slot but intentionally skips engine teardown, so
      // removing the query falls to us. The sweep runs before
      // listener_.Stop() joins this handler, so the engine is still alive.
      engine_->Remove(*submitted);
      sess->removed.store(true, std::memory_order_relaxed);
    }
    return {503, "application/json",
            ErrorJson("shutting down", "server is stopping")};
  }
  if (engine_->finished()) sess->queue.Finish();

  std::string body = "{\"session\":\"" + id + "\"";
  body += ",\"policy\":\"" + policy + "\"";
  body += ",\"queue\":" + std::to_string(qopts.limit);
  if (replay) body += ",\"replayed\":" + std::to_string(replayed);
  body += ",\"schema\":\"" + obs::JsonEscape(sess->schema) + "\"";
  body += ",\"plan\":\"" + obs::JsonEscape(sess->plan) + "\"";
  body += ",\"results\":\"/session/" + id + "/results\"}\n";
  return {200, "application/json", body};
}

void QueryServer::HandleResults(int fd, const std::string& id,
                                const HttpRequest& req) {
  std::shared_ptr<Session> sess = FindSession(id);
  if (sess == nullptr) {
    WriteHttpResponse(fd, 404, "application/json",
                      ErrorJson("no such session", id));
    return;
  }
  uint64_t cursor =
      static_cast<uint64_t>(std::max<int64_t>(0, req.ParamInt("cursor", 0)));
  int64_t max_rows = req.ParamInt("max", 0);  // 0 = no cap.
  int wait_ms = static_cast<int>(std::clamp<int64_t>(
      req.ParamInt("wait_ms", options_.default_wait_ms), 0,
      options_.max_wait_ms));

  // The cursor is the acknowledgement: everything below it is processed
  // on the client's side and can be dropped from retention.
  sess->queue.Ack(cursor);

  ChunkedWriter w(fd);
  if (!w.Begin(200, "application/x-ndjson")) return;

  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(wait_ms);
  uint64_t next = cursor;
  uint64_t sent = 0;
  bool finished = false;
  for (;;) {
    size_t batch = options_.rows_per_batch;
    if (max_rows > 0) {
      uint64_t left = static_cast<uint64_t>(max_rows) - sent;
      if (left == 0) break;
      batch = static_cast<size_t>(
          std::min<uint64_t>(batch, left));
    }
    ResultQueue::Wait got = sess->queue.WaitRows(next, batch, deadline);
    if (!got.rows.empty()) {
      std::string out;
      size_t need = 0;
      for (const SessionRow& row : got.rows) need += row.json.size() + 24;
      out.reserve(need);
      for (const SessionRow& row : got.rows) {
        out += "{\"seq\":";
        out += std::to_string(row.seq);
        out.push_back(',');
        // Cached render from enqueue time; re-encode only if absent
        // (a row pushed by code that bypassed ResultQueue::Push).
        if (!row.json.empty()) {
          out += row.json;
        } else {
          AppendRowJson(*row.tuple, &out);
        }
        out += "}\n";
      }
      next = got.rows.back().seq + 1;
      sent += got.rows.size();
      rows_delivered_.fetch_add(got.rows.size(), std::memory_order_relaxed);
      if (!w.Write(out)) return;  // Client went away; keep rows unacked.
    }
    finished = got.finished;
    if (finished || got.closed) break;
    // Queue at capacity and fully streamed: the producer is blocked until
    // the client acks — end the response so it can re-request with a
    // higher cursor.
    if (got.full && next >= sess->queue.next_seq()) break;
    if (std::chrono::steady_clock::now() >= deadline) break;
  }

  std::string trailer = "{\"next_cursor\":" + std::to_string(next);
  trailer += std::string(",\"finished\":") + (finished ? "true" : "false");
  trailer += ",\"dropped\":" + std::to_string(sess->queue.dropped()) + "}\n";
  w.Write(trailer);
  w.End();
}

std::string QueryServer::SessionInfo(const Session& s) const {
  double shed_rate = -1.0;
  uint64_t shed_dropped = 0;
  // Caller holds mu_, so s.handle cannot be concurrently removed.
  if (s.handle != nullptr && s.handle->adaptive_shedding()) {
    shed_rate = s.handle->shed_drop_rate();
    shed_dropped = s.handle->shed_dropped();
  }
  return s.InfoJson(shed_rate, shed_dropped);
}

QueryServer::Response QueryServer::HandleSessionInfo(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return {404, "application/json", ErrorJson("no such session", id)};
  }
  return {200, "application/json", SessionInfo(*it->second) + "\n"};
}

QueryServer::Response QueryServer::HandleSessionProfile(
    const std::string& id, const HttpRequest& req) {
  obs::QueryProfile profile;
  {
    // Holding mu_ pins the handle: CloseSession nulls it under the same
    // lock before the engine tears the query down. The snapshot itself
    // only reads operator atomics, so the critical section stays short.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return {404, "application/json", ErrorJson("no such session", id)};
    }
    if (!engine_->ProfileSnapshot(it->second->handle, &profile)) {
      return {404, "application/json",
              ErrorJson("no profile",
                        "profiling requires engine metrics to be enabled")};
    }
  }
  const std::string* format = req.Param("format");
  if (format != nullptr && *format == "text") {
    return {200, "text/plain; charset=utf-8", profile.Pretty()};
  }
  return {200, "application/json", profile.ToJson() + "\n"};
}

QueryServer::Response QueryServer::HandleEvents(const HttpRequest& req) {
  uint64_t max = static_cast<uint64_t>(
      std::max<int64_t>(0, req.ParamInt("max", 0)));
  uint64_t after = static_cast<uint64_t>(
      std::max<int64_t>(0, req.ParamInt("after", 0)));
  return {200, "application/json", engine_->Events().ToJson(max, after)};
}

QueryServer::Response QueryServer::HandleSessionClose(const std::string& id) {
  if (!CloseSession(id, /*remove_query=*/true)) {
    return {404, "application/json", ErrorJson("no such session", id)};
  }
  return {200, "application/json", "{\"closed\":\"" + id + "\"}\n"};
}

bool QueryServer::CloseSession(const std::string& id, bool remove_query) {
  std::shared_ptr<Session> sess;
  QueryHandle* handle = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    sess = it->second;
    sessions_.erase(it);
    // Winning the erase is the teardown gate; null the handle under mu_
    // so info readers never see it mid-removal.
    handle = sess->handle;
    sess->handle = nullptr;
  }
  // Close first: unblocks a producer stuck in a full kBlock queue, so the
  // engine's Remove (exclusive registration lock + final flush) cannot
  // deadlock against it.
  sess->queue.Close();
  if (remove_query && handle != nullptr) {
    engine_->Remove(handle);
    sess->removed.store(true, std::memory_order_relaxed);
  }
  admission_.Release(sess->queue.options().limit);
  return true;
}

QueryServer::Response QueryServer::HandleSessions() {
  std::lock_guard<std::mutex> lock(mu_);
  std::string body = "{\"sessions\":[";
  bool first = true;
  for (auto& [id, sess] : sessions_) {
    if (!first) body += ",";
    first = false;
    body += SessionInfo(*sess);
  }
  body += "]}\n";
  return {200, "application/json", body};
}

QueryServer::Response QueryServer::HandleStats() {
  std::string body = "{\"sessions\":" + std::to_string(num_sessions());
  body += ",\"admitted_reserved_rows\":" +
          std::to_string(admission_.reserved_rows());
  body += ",\"max_sessions\":" +
          std::to_string(admission_.options().max_sessions);
  body += ",\"max_queued_rows\":" +
          std::to_string(admission_.options().max_queued_rows);
  body += ",\"rejected\":" + std::to_string(admission_.rejected());
  body += ",\"rows_delivered\":" +
          std::to_string(rows_delivered_.load(std::memory_order_relaxed));
  body += ",\"requests\":" +
          std::to_string(requests_.load(std::memory_order_relaxed));
  body += ",\"connections_accepted\":" + std::to_string(listener_.accepted());
  body += ",\"connections_rejected\":" +
          std::to_string(listener_.overflowed());
  body +=
      ",\"connections_active\":" + std::to_string(listener_.active_connections());
  const RecoveryReport& rec = engine_->recovery_report();
  body += std::string(",\"recovery\":{\"recovered\":") +
          (rec.recovered ? "true" : "false");
  body += std::string(",\"checkpoint_loaded\":") +
          (rec.checkpoint_loaded ? "true" : "false");
  body += ",\"checkpoint_id\":" + std::to_string(rec.checkpoint_id);
  body += ",\"replayed_tuples\":" + std::to_string(rec.replayed_tuples);
  body += ",\"replayed_puncts\":" + std::to_string(rec.replayed_puncts);
  body += ",\"restored_queries\":" + std::to_string(rec.restored_queries);
  body += ",\"restored_operators\":" + std::to_string(rec.restored_operators);
  body += ",\"torn_streams\":" + std::to_string(rec.torn_streams);
  char sec[32];
  std::snprintf(sec, sizeof(sec), "%.3f", rec.replay_seconds);
  body += std::string(",\"replay_seconds\":") + sec + "}";
  body += "}\n";
  return {200, "application/json", body};
}

QueryServer::Response QueryServer::HandleRoot() {
  std::string body =
      "{\"service\":\"sqp query server\",\"endpoints\":["
      "\"POST /query?queue=&policy=block|drop|shed&block_ms=&replay=1\","
      "\"GET /session/<id>\",\"GET /session/<id>/results?cursor=&max=&wait_ms=\","
      "\"GET /session/<id>/profile?format=json|text\","
      "\"DELETE /session/<id>\",\"GET /sessions\",\"GET /stats\","
      "\"GET /events.json?after=&max=\",\"GET /healthz\"]}\n";
  return {200, "application/json", body};
}

void QueryServer::PublishMetrics(obs::SnapshotBuilder& b) const {
  std::lock_guard<std::mutex> lock(mu_);
  b.AddGauge("sqp_server_sessions", {}, static_cast<double>(sessions_.size()));
  b.AddCounter("sqp_server_rejected", {},
               static_cast<double>(admission_.rejected()));
  b.AddCounter("sqp_server_rows_delivered", {},
               static_cast<double>(
                   rows_delivered_.load(std::memory_order_relaxed)));
  b.AddGauge("sqp_server_connections_active", {},
             static_cast<double>(listener_.active_connections()));
  for (auto& [id, sess] : sessions_) {
    obs::LabelSet labels{{"session", id}};
    b.AddCounter("sqp_server_session_rows", labels,
                 static_cast<double>(sess->queue.produced()));
    b.AddCounter("sqp_server_session_dropped", labels,
                 static_cast<double>(sess->queue.dropped()));
    b.AddGauge("sqp_server_session_queue_depth", labels,
               static_cast<double>(sess->queue.depth()));
    b.AddGauge("sqp_server_session_lag", labels,
               static_cast<double>(sess->queue.lag()));
  }
}

}  // namespace server
}  // namespace sqp
