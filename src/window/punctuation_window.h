#ifndef SQP_WINDOW_PUNCTUATION_WINDOW_H_
#define SQP_WINDOW_PUNCTUATION_WINDOW_H_

#include <unordered_map>
#include <vector>

#include "common/tuple.h"
#include "stream/element.h"

namespace sqp {

/// Punctuation-delimited, data-dependent windows [TMSF03] (slide 28).
///
/// Tuples are buffered per key (e.g. auction id). A CloseKey punctuation
/// releases and removes that key's buffer; a plain watermark releases all
/// keys whose buffered tuples are entirely at or below the watermark.
class PunctuationWindowBuffer {
 public:
  /// `key_col` selects the partitioning attribute of inserted tuples.
  explicit PunctuationWindowBuffer(int key_col) : key_col_(key_col) {}

  /// Buffers a tuple under its key.
  void Insert(TupleRef t);

  /// Applies a punctuation. Returns the closed groups (key, tuples).
  std::vector<std::pair<Value, std::vector<TupleRef>>> OnPunctuation(
      const Punctuation& p);

  size_t num_open_keys() const { return groups_.size(); }
  size_t buffered_tuples() const { return buffered_; }
  size_t MemoryBytes() const { return bytes_; }

 private:
  int key_col_;
  std::unordered_map<Value, std::vector<TupleRef>, ValueHash> groups_;
  size_t buffered_ = 0;
  size_t bytes_ = 0;
};

}  // namespace sqp

#endif  // SQP_WINDOW_PUNCTUATION_WINDOW_H_
