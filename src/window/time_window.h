#ifndef SQP_WINDOW_TIME_WINDOW_H_
#define SQP_WINDOW_TIME_WINDOW_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/tuple.h"

namespace sqp {

/// Materialized contents of a time-based sliding window [RANGE T]:
/// tuples whose timestamp is in (now - T, now].
///
/// The buffer assumes nondecreasing insertion timestamps (enforced by the
/// stream's ordering attribute), which makes expiration O(1) amortized —
/// the "invalidate all expired tuples" step of the KNV03 join (slide 32).
class TimeWindowBuffer {
 public:
  explicit TimeWindowBuffer(int64_t size) : size_(size) {}

  /// Inserts a tuple (its ts advances `now`), then expires old entries.
  /// Expired tuples are appended to `expired` when non-null.
  void Insert(TupleRef t, std::vector<TupleRef>* expired = nullptr);

  /// Advances time without inserting (e.g. on a punctuation).
  void AdvanceTo(int64_t now, std::vector<TupleRef>* expired = nullptr);

  const std::deque<TupleRef>& contents() const { return buf_; }
  size_t size() const { return buf_.size(); }
  bool empty() const { return buf_.empty(); }
  int64_t window_size() const { return size_; }
  int64_t now() const { return now_; }

  /// Total bytes of retained tuples (memory-limited join experiments).
  size_t MemoryBytes() const { return bytes_; }

 private:
  void Expire(std::vector<TupleRef>* expired);

  int64_t size_;
  int64_t now_ = INT64_MIN;
  std::deque<TupleRef> buf_;
  size_t bytes_ = 0;
};

/// Maps timestamps to disjoint tumbling buckets of width `size` — the
/// `time/60 as tb` shifting window of GSQL (slides 13, 37).
class TumblingAssigner {
 public:
  explicit TumblingAssigner(int64_t size) : size_(size) {}

  /// Bucket id containing `ts`.
  int64_t BucketOf(int64_t ts) const { return ts / size_; }
  /// First timestamp of bucket `b`.
  int64_t BucketStart(int64_t b) const { return b * size_; }
  /// One past the last timestamp of bucket `b`.
  int64_t BucketEnd(int64_t b) const { return (b + 1) * size_; }

  int64_t size() const { return size_; }

 private:
  int64_t size_;
};

}  // namespace sqp

#endif  // SQP_WINDOW_TIME_WINDOW_H_
