#ifndef SQP_WINDOW_WINDOW_SPEC_H_
#define SQP_WINDOW_WINDOW_SPEC_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace sqp {

/// The window taxonomy of slides 26-28.
enum class WindowKind {
  /// [RANGE T]: tuples with ts in (now - T, now]. Slides continuously.
  kTimeSliding,
  /// Shifting window, e.g. `group by time/60`: disjoint buckets of width T.
  kTimeTumbling,
  /// Agglomerative (landmark): from a fixed start time to now.
  kTimeLandmark,
  /// [ROWS N]: the last N tuples.
  kCountSliding,
  /// Disjoint batches of N tuples.
  kCountTumbling,
  /// Scope delimited by punctuations [TMSF03]; data-dependent length.
  kPunctuation,
};

const char* WindowKindName(WindowKind kind);

/// Declarative window specification, attached to a stream reference in a
/// query (`Traffic [window T]`, slide 30).
struct WindowSpec {
  WindowKind kind = WindowKind::kTimeSliding;
  /// Width in ordering-attribute units (time kinds) or tuples (count kinds).
  /// Ignored for landmark/punctuation windows.
  int64_t size = 0;
  /// Landmark start time (kTimeLandmark only).
  int64_t start = 0;

  static WindowSpec TimeSliding(int64_t t) {
    return {WindowKind::kTimeSliding, t, 0};
  }
  static WindowSpec TimeTumbling(int64_t t) {
    return {WindowKind::kTimeTumbling, t, 0};
  }
  static WindowSpec Landmark(int64_t start = 0) {
    return {WindowKind::kTimeLandmark, 0, start};
  }
  static WindowSpec CountSliding(int64_t n) {
    return {WindowKind::kCountSliding, n, 0};
  }
  static WindowSpec CountTumbling(int64_t n) {
    return {WindowKind::kCountTumbling, n, 0};
  }
  static WindowSpec Punctuated() { return {WindowKind::kPunctuation, 0, 0}; }

  /// Validates parameter ranges (positive sizes where required).
  Status Validate() const;

  std::string ToString() const;

  bool operator==(const WindowSpec& other) const {
    return kind == other.kind && size == other.size && start == other.start;
  }
};

}  // namespace sqp

#endif  // SQP_WINDOW_WINDOW_SPEC_H_
