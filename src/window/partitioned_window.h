#ifndef SQP_WINDOW_PARTITIONED_WINDOW_H_
#define SQP_WINDOW_PARTITIONED_WINDOW_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/tuple.h"
#include "window/count_window.h"

namespace sqp {

/// CQL-style `[PARTITION BY k ROWS N]` (slide 26 "variants"): an
/// independent count window of the last N rows per partition key.
class PartitionedCountWindow {
 public:
  PartitionedCountWindow(std::vector<int> key_cols, size_t rows_per_partition)
      : key_cols_(std::move(key_cols)), rows_(rows_per_partition) {}

  /// Inserts a tuple into its partition; returns the tuple evicted from
  /// that partition, if any.
  std::optional<TupleRef> Insert(TupleRef t);

  /// The current window of the given key (empty if unseen).
  std::vector<TupleRef> Partition(const Key& key) const;

  /// All retained tuples across partitions.
  std::vector<TupleRef> Contents() const;

  size_t num_partitions() const { return parts_.size(); }
  size_t MemoryBytes() const;

 private:
  std::vector<int> key_cols_;
  size_t rows_;
  std::unordered_map<Key, CountWindowBuffer, KeyHash> parts_;
};

}  // namespace sqp

#endif  // SQP_WINDOW_PARTITIONED_WINDOW_H_
