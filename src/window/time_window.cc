#include "window/time_window.h"

#include <algorithm>

namespace sqp {

void TimeWindowBuffer::Insert(TupleRef t, std::vector<TupleRef>* expired) {
  now_ = std::max(now_, t->ts());
  bytes_ += t->MemoryBytes();
  buf_.push_back(std::move(t));
  Expire(expired);
}

void TimeWindowBuffer::AdvanceTo(int64_t now, std::vector<TupleRef>* expired) {
  now_ = std::max(now_, now);
  Expire(expired);
}

void TimeWindowBuffer::Expire(std::vector<TupleRef>* expired) {
  // Window covers (now - size, now]; drop anything at or below the bound.
  int64_t bound = now_ - size_;
  while (!buf_.empty() && buf_.front()->ts() <= bound) {
    bytes_ -= buf_.front()->MemoryBytes();
    if (expired != nullptr) expired->push_back(std::move(buf_.front()));
    buf_.pop_front();
  }
}

}  // namespace sqp
