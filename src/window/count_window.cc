#include "window/count_window.h"

namespace sqp {

std::optional<TupleRef> CountWindowBuffer::Insert(TupleRef t) {
  bytes_ += t->MemoryBytes();
  buf_.push_back(std::move(t));
  if (buf_.size() > capacity_) {
    TupleRef evicted = std::move(buf_.front());
    buf_.pop_front();
    bytes_ -= evicted->MemoryBytes();
    return evicted;
  }
  return std::nullopt;
}

}  // namespace sqp
