#include "window/partitioned_window.h"

namespace sqp {

std::optional<TupleRef> PartitionedCountWindow::Insert(TupleRef t) {
  Key key = ExtractKey(*t, key_cols_);
  auto it = parts_.find(key);
  if (it == parts_.end()) {
    it = parts_.emplace(std::move(key), CountWindowBuffer(rows_)).first;
  }
  return it->second.Insert(std::move(t));
}

std::vector<TupleRef> PartitionedCountWindow::Partition(const Key& key) const {
  auto it = parts_.find(key);
  if (it == parts_.end()) return {};
  return {it->second.contents().begin(), it->second.contents().end()};
}

std::vector<TupleRef> PartitionedCountWindow::Contents() const {
  std::vector<TupleRef> out;
  for (const auto& [key, buf] : parts_) {
    out.insert(out.end(), buf.contents().begin(), buf.contents().end());
  }
  return out;
}

size_t PartitionedCountWindow::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [key, buf] : parts_) bytes += buf.MemoryBytes();
  return bytes;
}

}  // namespace sqp
