#include "window/punctuation_window.h"

namespace sqp {

void PunctuationWindowBuffer::Insert(TupleRef t) {
  const Value& key = t->at(static_cast<size_t>(key_col_));
  bytes_ += t->MemoryBytes();
  ++buffered_;
  groups_[key].push_back(std::move(t));
}

std::vector<std::pair<Value, std::vector<TupleRef>>>
PunctuationWindowBuffer::OnPunctuation(const Punctuation& p) {
  std::vector<std::pair<Value, std::vector<TupleRef>>> closed;
  if (p.has_key) {
    auto it = groups_.find(p.key);
    if (it != groups_.end()) {
      for (const TupleRef& t : it->second) {
        bytes_ -= t->MemoryBytes();
        --buffered_;
      }
      closed.emplace_back(it->first, std::move(it->second));
      groups_.erase(it);
    }
    return closed;
  }
  // Watermark: close every group whose newest tuple is <= p.ts.
  for (auto it = groups_.begin(); it != groups_.end();) {
    bool all_old = true;
    for (const TupleRef& t : it->second) {
      if (t->ts() > p.ts) {
        all_old = false;
        break;
      }
    }
    if (all_old) {
      for (const TupleRef& t : it->second) {
        bytes_ -= t->MemoryBytes();
        --buffered_;
      }
      closed.emplace_back(it->first, std::move(it->second));
      it = groups_.erase(it);
    } else {
      ++it;
    }
  }
  return closed;
}

}  // namespace sqp
