#include "window/window_spec.h"

namespace sqp {

const char* WindowKindName(WindowKind kind) {
  switch (kind) {
    case WindowKind::kTimeSliding:
      return "time-sliding";
    case WindowKind::kTimeTumbling:
      return "time-tumbling";
    case WindowKind::kTimeLandmark:
      return "landmark";
    case WindowKind::kCountSliding:
      return "count-sliding";
    case WindowKind::kCountTumbling:
      return "count-tumbling";
    case WindowKind::kPunctuation:
      return "punctuation";
  }
  return "unknown";
}

Status WindowSpec::Validate() const {
  switch (kind) {
    case WindowKind::kTimeSliding:
    case WindowKind::kTimeTumbling:
    case WindowKind::kCountSliding:
    case WindowKind::kCountTumbling:
      if (size <= 0) {
        return Status::InvalidArgument(std::string(WindowKindName(kind)) +
                                       " window requires positive size");
      }
      return Status::OK();
    case WindowKind::kTimeLandmark:
    case WindowKind::kPunctuation:
      return Status::OK();
  }
  return Status::InvalidArgument("unknown window kind");
}

std::string WindowSpec::ToString() const {
  std::string out = WindowKindName(kind);
  if (size > 0) out += " size=" + std::to_string(size);
  if (kind == WindowKind::kTimeLandmark) {
    out += " start=" + std::to_string(start);
  }
  return out;
}

}  // namespace sqp
