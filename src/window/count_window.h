#ifndef SQP_WINDOW_COUNT_WINDOW_H_
#define SQP_WINDOW_COUNT_WINDOW_H_

#include <deque>
#include <optional>

#include "common/tuple.h"

namespace sqp {

/// Materialized contents of a count-based sliding window [ROWS N]:
/// the most recent N tuples.
class CountWindowBuffer {
 public:
  explicit CountWindowBuffer(size_t capacity) : capacity_(capacity) {}

  /// Inserts a tuple; returns the evicted tuple once the window is full.
  std::optional<TupleRef> Insert(TupleRef t);

  const std::deque<TupleRef>& contents() const { return buf_; }
  size_t size() const { return buf_.size(); }
  bool empty() const { return buf_.empty(); }
  size_t capacity() const { return capacity_; }
  bool full() const { return buf_.size() == capacity_; }

  size_t MemoryBytes() const { return bytes_; }

 private:
  size_t capacity_;
  std::deque<TupleRef> buf_;
  size_t bytes_ = 0;
};

}  // namespace sqp

#endif  // SQP_WINDOW_COUNT_WINDOW_H_
