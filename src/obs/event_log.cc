#include "obs/event_log.h"

#include <algorithm>
#include <chrono>

#include "obs/snapshot.h"

namespace sqp {
namespace obs {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kQuerySubmit:
      return "query_submit";
    case EventKind::kQueryStop:
      return "query_stop";
    case EventKind::kCheckpointWritten:
      return "checkpoint_written";
    case EventKind::kCheckpointRestored:
      return "checkpoint_restored";
    case EventKind::kReplayStart:
      return "replay_start";
    case EventKind::kReplayFinish:
      return "replay_finish";
    case EventKind::kShedActivated:
      return "shed_activated";
    case EventKind::kShedDeactivated:
      return "shed_deactivated";
    case EventKind::kAdmissionRejected:
      return "admission_rejected";
    case EventKind::kShardStall:
      return "shard_stall";
    case EventKind::kFlushError:
      return "flush_error";
  }
  return "unknown";
}

EventLog::EventLog(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  ring_.resize(capacity_);
}

void EventLog::Emit(EventKind kind, std::string query, std::string message) {
  const int64_t wall_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::lock_guard<std::mutex> lock(mu_);
  EngineEvent& slot = ring_[(next_seq_ - 1) % capacity_];
  slot.seq = next_seq_++;
  slot.wall_ms = wall_ms;
  slot.kind = kind;
  slot.query = std::move(query);
  slot.message = std::move(message);
}

std::vector<EngineEvent> EventLog::Tail(size_t max, uint64_t after_seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t total = next_seq_ - 1;
  const uint64_t retained = std::min<uint64_t>(total, capacity_);
  uint64_t first = total - retained + 1;  // Oldest seq still in the ring.
  if (after_seq + 1 > first) first = after_seq + 1;
  if (max != 0 && total >= first && total - first + 1 > max) {
    first = total - max + 1;
  }
  std::vector<EngineEvent> out;
  if (first > total) return out;
  out.reserve(static_cast<size_t>(total - first + 1));
  for (uint64_t s = first; s <= total; ++s) {
    out.push_back(ring_[(s - 1) % capacity_]);
  }
  return out;
}

std::string EventLog::ToJson(size_t max, uint64_t after_seq) const {
  std::vector<EngineEvent> events = Tail(max, after_seq);
  std::string out = "{\"events\":[";
  bool first = true;
  for (const EngineEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"seq\":" + std::to_string(e.seq);
    out += ",\"wall_ms\":" + std::to_string(e.wall_ms);
    out += ",\"kind\":\"" + std::string(EventKindName(e.kind)) + "\"";
    if (!e.query.empty()) {
      out += ",\"query\":\"" + JsonEscape(e.query) + "\"";
    }
    out += ",\"message\":\"" + JsonEscape(e.message) + "\"}";
  }
  out += "],\"total\":" + std::to_string(total());
  out += ",\"capacity\":" + std::to_string(capacity_) + "}\n";
  return out;
}

uint64_t EventLog::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

}  // namespace obs
}  // namespace sqp
