#ifndef SQP_OBS_TRACE_H_
#define SQP_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace sqp {
namespace obs {

/// Monotonic clock in ns (steady_clock; comparable within a process).
uint64_t NowNs();

/// One hop of a sampled tuple's path through the plan.
struct TraceEvent {
  uint64_t trace_id = 0;  // 1-based id of the sampled tuple.
  uint32_t hop = 0;       // 0 = entry operator, increasing downstream.
  std::string op;         // Operator name at this hop.
  uint64_t ts_ns = 0;     // NowNs() when the hop's Push began.
};

/// Busy-time sampling rate: every Nth element entering an instrumented
/// chain is timed with real clock reads and its self-times are recorded
/// at N x, so busy_ns stays an unbiased estimate while the other N-1
/// elements pay only relaxed counter bumps. Must be a power of two.
inline constexpr uint32_t kTimeSampleEvery = 16;

/// Per-thread instrumentation context, shared by metrics self-timing and
/// tracing. `child_ns` accumulates the inclusive time of completed
/// nested Process calls so a parent can subtract them (self time);
/// `trace_id` marks an active sampled tuple for the duration of the
/// outermost Process on this thread. `timed` says whether the current
/// chain reads clocks at all; `busy_sampled` whether those reads feed
/// busy_ns (false when the element is timed only for a lineage trace).
struct ThreadObsContext {
  uint32_t depth = 0;
  uint64_t child_ns = 0;
  uint64_t trace_id = 0;
  uint32_t hop = 0;
  uint32_t time_tick = 0;
  bool timed = false;
  bool busy_sampled = false;
};

ThreadObsContext& ObsContext();

/// Sampled tuple-lineage recorder: every Nth element entering an
/// instrumented plan gets a trace id, and every operator it flows
/// through (synchronously, on one thread) appends a timestamped hop to a
/// fixed-size ring. The ring is mutex-guarded — only 1/N tuples ever
/// touch it, so the hot path stays lock-free — and end-to-end path
/// latency feeds a log-bucketed histogram for cheap quantiles.
///
/// Across a ParallelExecutor queue the thread (and thus the context)
/// changes, so a staged plan yields per-stage samples rather than one
/// stitched path; serial engines record the full lineage.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 2048) : capacity_(capacity) {}

  /// 0 disables sampling (the default); N samples every Nth arrival.
  void SetSampleEvery(uint64_t n) {
    sample_every_.store(n, std::memory_order_relaxed);
  }
  uint64_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }
  bool enabled() const { return sample_every() != 0; }

  /// Called at the outermost Process of an instrumented operator:
  /// returns a fresh trace id for a sampled arrival, 0 otherwise.
  uint64_t SampleArrival() {
    uint64_t n = sample_every_.load(std::memory_order_relaxed);
    if (n == 0) return 0;
    uint64_t arrival = arrivals_.fetch_add(1, std::memory_order_relaxed);
    if (arrival % n != 0) return 0;
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends one hop for an active trace (ring overwrite when full).
  void Record(uint64_t trace_id, uint32_t hop, const std::string& op,
              uint64_t ts_ns);

  /// End-to-end latency of a completed sampled path.
  void ObservePathNs(uint64_t ns) { path_ns_.Observe(ns); }

  /// Copies the ring out in arrival order (oldest first).
  std::vector<TraceEvent> Events() const;
  HistogramData PathLatency() const { return path_ns_.Data(); }
  uint64_t sampled() const {
    return next_id_.load(std::memory_order_relaxed);
  }

 private:
  const size_t capacity_;
  std::atomic<uint64_t> sample_every_{0};
  std::atomic<uint64_t> arrivals_{0};
  std::atomic<uint64_t> next_id_{1};
  Histogram path_ns_;

  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  // Grows to capacity_, then wraps.
  size_t next_slot_ = 0;
};

}  // namespace obs
}  // namespace sqp

#endif  // SQP_OBS_TRACE_H_
