#ifndef SQP_OBS_SNAPSHOT_H_
#define SQP_OBS_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/op_metrics.h"
#include "obs/trace.h"

namespace sqp {
namespace obs {

/// Metric labels, in rendering order ({{"query","q0"},{"op","select"}}).
using LabelSet = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One rendered metric point.
struct Sample {
  std::string name;
  LabelSet labels;
  MetricKind kind = MetricKind::kGauge;
  double value = 0.0;    // Counter/gauge value.
  HistogramData hist;    // Populated for kHistogram.
};

/// A consistent-enough point-in-time view of a registry: plain data,
/// safe to render, diff, or ship after the engine is gone.
struct Snapshot {
  std::vector<Sample> samples;
  std::vector<OpSnapshot> ops;
  std::vector<TraceEvent> trace;

  /// {"metrics":[...],"operators":[...],"trace":[...]}
  std::string ToJson() const;
  /// Prometheus text exposition format (one family per metric name;
  /// operators are expanded into sqp_op_* families with query/op
  /// labels; histograms render cumulative buckets + _sum/_count).
  std::string ToPrometheus() const;
  /// Human-oriented fixed-width tables (the sqpsh \metrics view).
  std::string Pretty() const;
};

/// Appends samples to a snapshot under construction. Handed to
/// registered collectors so external sources (executor stage stats,
/// derived gauges) publish through the same path as registry metrics.
class SnapshotBuilder {
 public:
  explicit SnapshotBuilder(Snapshot* s) : s_(s) {}

  void AddCounter(std::string name, LabelSet labels, double value) {
    Add(std::move(name), std::move(labels), MetricKind::kCounter, value);
  }
  void AddGauge(std::string name, LabelSet labels, double value) {
    Add(std::move(name), std::move(labels), MetricKind::kGauge, value);
  }
  void AddHistogram(std::string name, LabelSet labels,
                    const HistogramData& data) {
    Sample smp;
    smp.name = std::move(name);
    smp.labels = std::move(labels);
    smp.kind = MetricKind::kHistogram;
    smp.hist = data;
    s_->samples.push_back(std::move(smp));
  }
  void AddOp(OpSnapshot op) { s_->ops.push_back(std::move(op)); }

 private:
  void Add(std::string name, LabelSet labels, MetricKind kind, double value) {
    Sample smp;
    smp.name = std::move(name);
    smp.labels = std::move(labels);
    smp.kind = kind;
    smp.value = value;
    s_->samples.push_back(std::move(smp));
  }

  Snapshot* s_;
};

/// JSON string escaping (shared with the bench JSON writer).
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace sqp

#endif  // SQP_OBS_SNAPSHOT_H_
