#include "obs/http_exporter.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/monitor.h"

namespace sqp {
namespace obs {

namespace {

const char* StatusText(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Bad Request";
  }
}

/// Sends the whole buffer, tolerating short writes. Returns false on a
/// hard error (client went away — nothing to do about it).
bool SendAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

HttpExporter::HttpExporter(const MetricsRegistry* registry,
                           const Monitor* monitor)
    : registry_(registry), monitor_(monitor) {}

HttpExporter::~HttpExporter() { Stop(); }

Status HttpExporter::Serve(int port) {
  if (serving_.load(std::memory_order_relaxed)) {
    return Status::AlreadyExists("exporter is already serving");
  }
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port out of range: " +
                                   std::to_string(port));
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::Internal(std::string("bind: ") +
                                 std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 16) < 0) {
    Status st = Status::Internal(std::string("listen: ") +
                                 std::strerror(errno));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_ = fd;
  stop_requested_.store(false, std::memory_order_relaxed);
  serving_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpExporter::Stop() {
  if (!serving_.load(std::memory_order_relaxed)) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  // shutdown() wakes the blocked accept(); close() alone may not.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  serving_.store(false, std::memory_order_relaxed);
}

void HttpExporter::AcceptLoop() {
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listener shut down (or a hard error): exit the loop.
    }
    // A stalled client must not wedge the exporter: bound both directions.
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    ServeConnection(fd);
    ::close(fd);
  }
}

void HttpExporter::ServeConnection(int fd) {
  // Read until the end of the request head (or a sane cap — scrape
  // requests are one line plus a few headers).
  std::string req;
  char buf[1024];
  while (req.size() < 8192 && req.find("\r\n\r\n") == std::string::npos &&
         req.find("\n\n") == std::string::npos) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (req.find('\n') != std::string::npos) break;  // Have the line.
      return;  // Timeout/EOF before a full request line: drop silently.
    }
    req.append(buf, static_cast<size_t>(n));
  }
  size_t line_end = req.find('\n');
  if (line_end == std::string::npos) return;
  std::string line = req.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') line.pop_back();

  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                        : line.find(' ', sp1 + 1);
  const std::string method =
      sp1 == std::string::npos ? line : line.substr(0, sp1);
  std::string target = sp2 == std::string::npos
                           ? (sp1 == std::string::npos
                                  ? std::string()
                                  : line.substr(sp1 + 1))
                           : line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Route on the path alone; scrapers may append ?query params.
  size_t qmark = target.find('?');
  if (qmark != std::string::npos) target.resize(qmark);

  Response resp;
  if (method != "GET" && method != "HEAD") {
    resp.code = 405;
    resp.content_type = "text/plain; charset=utf-8";
    resp.body = "method not allowed\n";
  } else {
    resp = Handle(target);
  }
  std::string head = "HTTP/1.0 " + std::to_string(resp.code) + " " +
                     StatusText(resp.code) +
                     "\r\nContent-Type: " + resp.content_type +
                     "\r\nContent-Length: " + std::to_string(resp.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (!SendAll(fd, head.data(), head.size())) return;
  if (method != "HEAD") SendAll(fd, resp.body.data(), resp.body.size());
}

HttpExporter::Response HttpExporter::Handle(const std::string& target) const {
  Response resp;
  if (target == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = registry_->TakeSnapshot().ToPrometheus();
    return resp;
  }
  if (target == "/snapshot.json") {
    resp.content_type = "application/json";
    resp.body = registry_->TakeSnapshot().ToJson();
    return resp;
  }
  if (target == "/series.json") {
    resp.content_type = "application/json";
    resp.body = monitor_ != nullptr
                    ? monitor_->SeriesJson()
                    : std::string("{\"ticks\":0,\"period_ms\":0,"
                                  "\"series\":[]}");
    return resp;
  }
  if (target == "/" || target.empty()) {
    resp.content_type = "text/plain; charset=utf-8";
    resp.body =
        "streamqp metrics exporter\n"
        "  /metrics        Prometheus text exposition\n"
        "  /snapshot.json  full metrics snapshot\n"
        "  /series.json    monitor time-series history\n";
    return resp;
  }
  resp.code = 404;
  resp.content_type = "text/plain; charset=utf-8";
  resp.body = "not found\n";
  return resp;
}

}  // namespace obs
}  // namespace sqp
