#include "obs/http_exporter.h"

#include <cstdlib>

#include "obs/monitor.h"
#include "server/http.h"

namespace sqp {
namespace obs {

namespace {

/// Numeric value of `key` in a raw query string ("after=12&max=50");
/// 0 when absent or unparsable.
uint64_t QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return std::strtoull(query.c_str() + eq + 1, nullptr, 10);
    }
    pos = amp + 1;
  }
  return 0;
}

}  // namespace

HttpExporter::HttpExporter(const MetricsRegistry* registry,
                           const Monitor* monitor)
    : registry_(registry), monitor_(monitor) {}

HttpExporter::~HttpExporter() { Stop(); }

Status HttpExporter::Serve(int port) {
  server::NetListenerOptions opts;
  opts.backlog = 16;
  // A stalled client must not wedge the exporter: bound both directions.
  opts.recv_timeout_ms = 2000;
  opts.send_timeout_ms = 2000;
  opts.max_concurrent = 0;  // Sequential: one scraper is the intended load.
  return listener_.Start(port, [this](int fd) { ServeConnection(fd); }, opts);
}

void HttpExporter::Stop() { listener_.Stop(); }

void HttpExporter::ServeConnection(int fd) {
  server::HttpRequest req;
  if (!server::ReadHttpRequest(fd, &req)) return;  // Drop silently.

  Response resp;
  if (req.method != "GET" && req.method != "HEAD") {
    resp.code = 405;
    resp.content_type = "text/plain; charset=utf-8";
    resp.body = "method not allowed\n";
  } else {
    resp = Handle(req.path);
  }
  server::WriteHttpResponse(fd, resp.code, resp.content_type, resp.body,
                            req.method == "HEAD");
}

HttpExporter::Response HttpExporter::Handle(const std::string& target) const {
  // Route on the path; /events.json reads tail params off the query.
  std::string path = target;
  std::string query;
  size_t qmark = path.find('?');
  if (qmark != std::string::npos) {
    query = path.substr(qmark + 1);
    path.resize(qmark);
  }

  Response resp;
  if (path == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = registry_->TakeSnapshot().ToPrometheus();
    return resp;
  }
  if (path == "/snapshot.json") {
    resp.content_type = "application/json";
    resp.body = registry_->TakeSnapshot().ToJson();
    return resp;
  }
  if (path == "/series.json") {
    resp.content_type = "application/json";
    resp.body = monitor_ != nullptr
                    ? monitor_->SeriesJson()
                    : std::string("{\"ticks\":0,\"period_ms\":0,"
                                  "\"series\":[]}");
    return resp;
  }
  if (path == "/events.json" && events_ != nullptr) {
    resp.content_type = "application/json";
    resp.body = events_->ToJson(QueryParam(query, "max"),
                                QueryParam(query, "after"));
    return resp;
  }
  if (path.rfind("/profile/", 0) == 0 && profile_source_) {
    std::string label = path.substr(9);
    if (label.size() > 5 && label.compare(label.size() - 5, 5, ".json") == 0) {
      label.resize(label.size() - 5);
    }
    std::string body;
    if (!label.empty() && profile_source_(label, &body)) {
      resp.content_type = "application/json";
      resp.body = std::move(body);
      return resp;
    }
    resp.code = 404;
    resp.content_type = "text/plain; charset=utf-8";
    resp.body = "unknown query\n";
    return resp;
  }
  if (path == "/" || path.empty()) {
    resp.content_type = "text/plain; charset=utf-8";
    resp.body =
        "streamqp metrics exporter\n"
        "  /metrics           Prometheus text exposition\n"
        "  /snapshot.json     full metrics snapshot\n"
        "  /series.json       monitor time-series history\n"
        "  /events.json       structured event log (?after=,&max=)\n"
        "  /profile/<q>.json  per-query EXPLAIN ANALYZE profile\n";
    return resp;
  }
  resp.code = 404;
  resp.content_type = "text/plain; charset=utf-8";
  resp.body = "not found\n";
  return resp;
}

}  // namespace obs
}  // namespace sqp
