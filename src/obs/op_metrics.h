#ifndef SQP_OBS_OP_METRICS_H_
#define SQP_OBS_OP_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace sqp {
namespace obs {

/// One operator's counters, copied out of the live atomics.
struct OpSnapshot {
  std::string query;  // Label of the owning plan ("q0", bench name, ...).
  std::string op;     // Operator name ("select", "window-agg", ...).
  int index = 0;      // Position in the plan (disambiguates duplicates).

  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  uint64_t puncts_in = 0;
  uint64_t puncts_out = 0;
  /// Delivery batches claimed by an executor (0 for purely synchronous
  /// operators — only staged executors hand work over in batches).
  uint64_t batches = 0;
  /// Self time: ns spent inside this operator's Push, excluding time
  /// spent in downstream operators it pushed into.
  uint64_t busy_ns = 0;
  /// High-water mark of the input queue in front of this operator
  /// (mirrored in by the executor that owns the queue; 0 if unqueued).
  uint64_t queue_depth_hw = 0;

  double Selectivity() const {
    return tuples_in == 0 ? 0.0
                          : static_cast<double>(tuples_out) /
                                static_cast<double>(tuples_in);
  }
};

/// Hot-path per-operator metrics: plain relaxed atomics, padded to a
/// cache line so two busy operators bound to adjacent slots don't false-
/// share. An operator updates these on every element when bound (see
/// Operator::Bind); unbound operators pay only a null check.
struct alignas(64) OpMetrics {
  std::atomic<uint64_t> tuples_in{0};
  std::atomic<uint64_t> tuples_out{0};
  std::atomic<uint64_t> puncts_in{0};
  std::atomic<uint64_t> puncts_out{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> busy_ns{0};
  std::atomic<uint64_t> queue_depth_hw{0};

  void CountIn(bool punct) {
    (punct ? puncts_in : tuples_in).fetch_add(1, std::memory_order_relaxed);
  }
  /// Bulk arrival count for batched sinks: one atomic add per kind per
  /// batch instead of one per element.
  void CountInBulk(uint64_t tuples, uint64_t puncts) {
    if (tuples != 0) tuples_in.fetch_add(tuples, std::memory_order_relaxed);
    if (puncts != 0) puncts_in.fetch_add(puncts, std::memory_order_relaxed);
  }
  void CountOut(bool punct) {
    (punct ? puncts_out : tuples_out).fetch_add(1, std::memory_order_relaxed);
  }
  /// Bulk emission count, the output twin of CountInBulk — columnar
  /// operators account a whole batch with two adds instead of one CAS
  /// pair per element (the E15 amortization).
  void CountOutBulk(uint64_t tuples, uint64_t puncts) {
    if (tuples != 0) tuples_out.fetch_add(tuples, std::memory_order_relaxed);
    if (puncts != 0) puncts_out.fetch_add(puncts, std::memory_order_relaxed);
  }
  void IncBatches() { batches.fetch_add(1, std::memory_order_relaxed); }
  void AddBusyNs(uint64_t ns) {
    busy_ns.fetch_add(ns, std::memory_order_relaxed);
  }
  void UpdateQueueDepth(uint64_t depth) {
    uint64_t cur = queue_depth_hw.load(std::memory_order_relaxed);
    while (cur < depth &&
           !queue_depth_hw.compare_exchange_weak(cur, depth,
                                                 std::memory_order_relaxed,
                                                 std::memory_order_relaxed)) {
    }
  }

  OpSnapshot Snapshot(std::string query, std::string op, int index) const {
    OpSnapshot s;
    s.query = std::move(query);
    s.op = std::move(op);
    s.index = index;
    s.tuples_in = tuples_in.load(std::memory_order_relaxed);
    s.tuples_out = tuples_out.load(std::memory_order_relaxed);
    s.puncts_in = puncts_in.load(std::memory_order_relaxed);
    s.puncts_out = puncts_out.load(std::memory_order_relaxed);
    s.batches = batches.load(std::memory_order_relaxed);
    s.busy_ns = busy_ns.load(std::memory_order_relaxed);
    s.queue_depth_hw = queue_depth_hw.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace obs
}  // namespace sqp

#endif  // SQP_OBS_OP_METRICS_H_
