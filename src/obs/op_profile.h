#ifndef SQP_OBS_OP_PROFILE_H_
#define SQP_OBS_OP_PROFILE_H_

#include <atomic>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sqp {
namespace obs {

/// Materialized per-operator profile state (what a snapshot carries).
struct OpProfileData {
  /// Event time of the last watermark this operator forwarded
  /// downstream; kNoWatermark until the first one.
  int64_t wm_ts = 0;
  /// NowNs() wall timestamp of that forward (pairing with a source-side
  /// ingest timestamp gives punctuation propagation delay).
  uint64_t wm_ns = 0;
  uint64_t wm_count = 0;
  /// Per-element deliveries (Process calls) vs batched ones — the
  /// batch-size distribution counts singles as batches of one.
  uint64_t singles = 0;
  /// Total ns elements spent parked in an executor queue in front of
  /// this operator, and how many were so parked.
  uint64_t queue_wait_ns = 0;
  uint64_t queued_items = 0;
  /// Last sampled and peak StateBytes() of this operator.
  uint64_t state_bytes = 0;
  uint64_t peak_state_bytes = 0;
  HistogramData batch_rows;
};

/// One operator's per-query profile slot: the hot-path half of the
/// query profiler (EXPLAIN ANALYZE). Like OpMetrics this is a bundle of
/// relaxed atomics padded to a cache line — safe to write from the
/// operator's single driving thread while any number of snapshot
/// readers scrape it. Unbound operators (the default) pay one pointer
/// null check per hook; the rows/selectivity/busy-time half of the
/// profile stays in OpMetrics so nothing is double-counted.
///
/// StateBytes sampling is the exception to "any thread": the sampling
/// interval counter is owner-thread-only plain state, and the operator
/// samples itself from its own driving thread (a snapshot reader never
/// calls StateBytes(), which is not thread-safe on most operators).
struct alignas(64) OpProfile {
  /// "No watermark forwarded yet" sentinel for wm_ts (event time is a
  /// full int64 domain, so the minimum is reserved).
  static constexpr int64_t kNoWatermark = INT64_MIN;
  /// StateBytes() can be O(state) (CollectorSink walks its rows), so
  /// sampling backs off geometrically to this ceiling.
  static constexpr uint32_t kMaxStateSampleInterval = 256;

  std::atomic<int64_t> wm_ts{kNoWatermark};
  std::atomic<uint64_t> wm_ns{0};
  std::atomic<uint64_t> wm_count{0};
  std::atomic<uint64_t> singles{0};
  std::atomic<uint64_t> queue_wait_ns{0};
  std::atomic<uint64_t> queued_items{0};
  std::atomic<uint64_t> state_bytes{0};
  std::atomic<uint64_t> peak_state_bytes{0};
  Histogram batch_rows;

  /// The operator forwarded a non-keyed punctuation (watermark) with
  /// event time `ts` downstream. Watermarks are rare relative to tuples,
  /// so the clock read here is off the per-tuple path.
  void OnWatermarkForward(int64_t ts) {
    wm_ts.store(ts, std::memory_order_relaxed);
    wm_ns.store(NowNs(), std::memory_order_relaxed);
    wm_count.fetch_add(1, std::memory_order_relaxed);
  }

  /// A batched delivery of `rows` elements crossed this operator.
  void ObserveBatch(uint64_t rows) { batch_rows.Observe(rows); }

  /// A per-element delivery crossed this operator.
  void CountSingle() { singles.fetch_add(1, std::memory_order_relaxed); }

  /// Executor-side: `items` elements waited `ns` total in this
  /// operator's input queue.
  void AddQueueWait(uint64_t ns, uint64_t items) {
    queue_wait_ns.fetch_add(ns, std::memory_order_relaxed);
    queued_items.fetch_add(items, std::memory_order_relaxed);
  }

  /// Records a StateBytes() sample (owner thread for the peak update is
  /// not required — the max is a CAS loop).
  void SampleState(uint64_t bytes) {
    state_bytes.store(bytes, std::memory_order_relaxed);
    uint64_t cur = peak_state_bytes.load(std::memory_order_relaxed);
    while (cur < bytes && !peak_state_bytes.compare_exchange_weak(
                              cur, bytes, std::memory_order_relaxed,
                              std::memory_order_relaxed)) {
    }
  }

  /// Geometric-backoff sampling wrapper around SampleState: calls
  /// `state_bytes_fn` on the 1st, 2nd, 4th, ... invocation, capping the
  /// interval at kMaxStateSampleInterval. MUST be called only from the
  /// operator's single driving thread (plain counters, and the callback
  /// reads live operator state).
  template <typename Fn>
  void MaybeSampleState(Fn&& state_bytes_fn) {
    if (++state_tick_ < state_every_) return;
    state_tick_ = 0;
    if (state_every_ < kMaxStateSampleInterval) state_every_ *= 2;
    SampleState(static_cast<uint64_t>(state_bytes_fn()));
  }

  OpProfileData Snapshot() const {
    OpProfileData d;
    d.wm_ts = wm_ts.load(std::memory_order_relaxed);
    d.wm_ns = wm_ns.load(std::memory_order_relaxed);
    d.wm_count = wm_count.load(std::memory_order_relaxed);
    d.singles = singles.load(std::memory_order_relaxed);
    d.queue_wait_ns = queue_wait_ns.load(std::memory_order_relaxed);
    d.queued_items = queued_items.load(std::memory_order_relaxed);
    d.state_bytes = state_bytes.load(std::memory_order_relaxed);
    d.peak_state_bytes = peak_state_bytes.load(std::memory_order_relaxed);
    d.batch_rows = batch_rows.Data();
    return d;
  }

 private:
  // Owner-thread-only sampling interval state (see MaybeSampleState).
  uint32_t state_tick_ = 0;
  uint32_t state_every_ = 1;
};

}  // namespace obs
}  // namespace sqp

#endif  // SQP_OBS_OP_PROFILE_H_
