#ifndef SQP_OBS_EVENT_LOG_H_
#define SQP_OBS_EVENT_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sqp {
namespace obs {

/// Engine lifecycle event kinds (see EventLog). The names are the wire
/// format (`/events.json`, `sqpsh \events`), so renames are breaking.
enum class EventKind {
  kQuerySubmit,
  kQueryStop,
  kCheckpointWritten,
  kCheckpointRestored,
  kReplayStart,
  kReplayFinish,
  kShedActivated,
  kShedDeactivated,
  kAdmissionRejected,
  kShardStall,
  kFlushError,
};

const char* EventKindName(EventKind kind);

/// One timestamped lifecycle event.
struct EngineEvent {
  /// Monotonic sequence number (1-based): `Tail(after_seq=...)` resumes
  /// a client-side tail without re-reading, and gaps tell a reader how
  /// many events the bounded ring overwrote.
  uint64_t seq = 0;
  /// Wall-clock milliseconds since the Unix epoch (system clock — these
  /// are operator-facing timestamps, not latency measurements).
  int64_t wall_ms = 0;
  EventKind kind = EventKind::kQuerySubmit;
  /// Query label ("q0", ...) when the event is query-scoped, else "".
  std::string query;
  /// Free-form detail ("ckpt id=3 pos=12000", an error message, ...).
  std::string message;
};

/// Bounded ring of engine lifecycle events: query submit/stop,
/// checkpoints, replay, shed-gate transitions, admission rejections,
/// shard backpressure stalls, durability flush errors. Mutex-guarded —
/// every producer site is a rare control-plane transition (never the
/// per-tuple path), so a lock beats lock-free complexity here. Readers
/// copy the tail out under the same lock.
class EventLog {
 public:
  explicit EventLog(size_t capacity = 1024);

  /// Appends one event, evicting the oldest past capacity.
  void Emit(EventKind kind, std::string query, std::string message);

  /// Most-recent events in chronological order. `max` = 0 means all
  /// retained; `after_seq` skips events already seen (tail -f resume).
  std::vector<EngineEvent> Tail(size_t max = 0, uint64_t after_seq = 0) const;

  /// {"events":[{"seq":..,"wall_ms":..,"kind":"..","query":"..",
  /// "message":".."},...],"total":N,"capacity":C} — same filtering as
  /// Tail.
  std::string ToJson(size_t max = 0, uint64_t after_seq = 0) const;

  /// Events ever emitted (>= retained count once the ring wraps).
  uint64_t total() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  /// Ring storage: ring_[seq % capacity_] holds event `seq` (seq is
  /// 1-based, slot = (seq - 1) % capacity_).
  std::vector<EngineEvent> ring_;
  uint64_t next_seq_ = 1;
};

}  // namespace obs
}  // namespace sqp

#endif  // SQP_OBS_EVENT_LOG_H_
