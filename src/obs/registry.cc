#include "obs/registry.h"

namespace sqp {
namespace obs {

namespace {

std::string Key(const std::string& name, const LabelSet& labels) {
  std::string key = name;
  for (const auto& kv : labels) {
    key += '\x1f';
    key += kv.first;
    key += '\x1e';
    key += kv.second;
  }
  return key;
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     LabelSet labels) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = Key(name, labels);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) return &it->second->counter;
  Entry& e = entries_.emplace_back();
  e.name = name;
  e.labels = std::move(labels);
  e.kind = MetricKind::kCounter;
  by_key_[key] = &e;
  return &e.counter;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, LabelSet labels) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = Key(name, labels);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) return &it->second->gauge;
  Entry& e = entries_.emplace_back();
  e.name = name;
  e.labels = std::move(labels);
  e.kind = MetricKind::kGauge;
  by_key_[key] = &e;
  return &e.gauge;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         LabelSet labels) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = Key(name, labels);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) return &it->second->histogram;
  Entry& e = entries_.emplace_back();
  e.name = name;
  e.labels = std::move(labels);
  e.kind = MetricKind::kHistogram;
  by_key_[key] = &e;
  return &e.histogram;
}

OpMetrics* MetricsRegistry::GetOpMetrics(const std::string& query,
                                         const std::string& op, int index) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = Key(query, {{op, std::to_string(index)}});
  auto it = ops_by_key_.find(key);
  if (it != ops_by_key_.end()) return &it->second->metrics;
  OpEntry& e = op_entries_.emplace_back();
  e.query = query;
  e.op = op;
  e.index = index;
  ops_by_key_[key] = &e;
  return &e.metrics;
}

void MetricsRegistry::AddCollector(const std::string& name,
                                   std::function<void(SnapshotBuilder&)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& c : collectors_) {
    if (c.first == name) {
      c.second = std::move(fn);
      return;
    }
  }
  collectors_.emplace_back(name, std::move(fn));
}

void MetricsRegistry::RemoveCollector(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = collectors_.begin(); it != collectors_.end(); ++it) {
    if (it->first == name) {
      collectors_.erase(it);
      return;
    }
  }
}

Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snap;
  SnapshotBuilder builder(&snap);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : entries_) {
      switch (e.kind) {
        case MetricKind::kCounter:
          builder.AddCounter(e.name, e.labels,
                             static_cast<double>(e.counter.Value()));
          break;
        case MetricKind::kGauge:
          builder.AddGauge(e.name, e.labels, e.gauge.Value());
          break;
        case MetricKind::kHistogram:
          builder.AddHistogram(e.name, e.labels, e.histogram.Data());
          break;
      }
    }
    for (const OpEntry& o : op_entries_) {
      builder.AddOp(o.metrics.Snapshot(o.query, o.op, o.index));
    }
    for (const auto& c : collectors_) c.second(builder);
  }
  if (tracer_.enabled() || tracer_.sampled() > 1) {
    builder.AddHistogram("sqp_trace_path_ns", {}, tracer_.PathLatency());
    snap.trace = tracer_.Events();
  }
  return snap;
}

}  // namespace obs
}  // namespace sqp
