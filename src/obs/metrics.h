#ifndef SQP_OBS_METRICS_H_
#define SQP_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace sqp {
namespace obs {

/// Monotonic event count. All mutators are relaxed atomics: metrics are
/// statistical, never used for synchronization, so the hot path pays one
/// uncontended RMW and nothing else (no locks, no allocation).
class Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Point-in-time value (queue depth, backlog, rate). `UpdateMax` turns a
/// gauge into a high-water mark.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
    }
  }
  void UpdateMax(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (cur < v && !v_.compare_exchange_weak(cur, v,
                                                std::memory_order_relaxed,
                                                std::memory_order_relaxed)) {
    }
  }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Materialized histogram state (what a snapshot carries around).
struct HistogramData {
  /// Bucket b counts values whose bit width is b: bucket 0 holds the
  /// value 0, bucket b >= 1 holds [2^(b-1), 2^b - 1]. 65 fixed bins
  /// cover all of uint64 — log-bucketing trades fine resolution for a
  /// constant-size, allocation-free layout.
  static constexpr int kNumBuckets = 65;

  std::array<uint64_t, kNumBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;

  /// Inclusive upper bound of bucket `b` (UINT64_MAX for the last).
  static uint64_t BucketUpperBound(int b);
  /// Inclusive lower bound of bucket `b`.
  static uint64_t BucketLowerBound(int b);

  /// Estimated q-quantile (q in [0,1]): finds the bucket holding the
  /// target rank and interpolates linearly inside it. Error is bounded
  /// by the bucket width (a factor of 2 in value).
  double Quantile(double q) const;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Log-bucketed histogram with fixed bins. Observe is two relaxed RMWs;
/// no allocation, no locks — safe to hammer from any number of threads
/// (TSan-clean), with the usual caveat that a concurrent snapshot is a
/// statistical read, not a linearizable one.
class Histogram {
 public:
  static int BucketFor(uint64_t v) {
    int b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b;  // == std::bit_width(v)
  }

  void Observe(uint64_t v) {
    buckets_[static_cast<size_t>(BucketFor(v))].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Copies the live bins out (relaxed reads; per-bin consistent).
  HistogramData Data() const;

 private:
  std::array<std::atomic<uint64_t>, HistogramData::kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

}  // namespace obs
}  // namespace sqp

#endif  // SQP_OBS_METRICS_H_
