#ifndef SQP_OBS_MONITOR_H_
#define SQP_OBS_MONITOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"

namespace sqp {
namespace obs {

/// One observation of one time series: the monitor tick it was taken on,
/// the wall-clock offset since the monitor started (ms), and the value.
struct SeriesPoint {
  uint64_t tick = 0;
  uint64_t wall_ms = 0;
  double value = 0.0;
};

/// Fixed-capacity history of one metric: the last `capacity` points,
/// oldest first when read back. Not internally synchronized — the
/// Monitor's mutex guards every ring it owns.
class SeriesRing {
 public:
  explicit SeriesRing(size_t capacity) : capacity_(capacity) {}

  void Push(SeriesPoint p) {
    if (ring_.size() < capacity_) {
      ring_.push_back(p);
    } else {
      ring_[next_] = p;
    }
    next_ = (next_ + 1) % capacity_;
  }

  /// Copies the history out in arrival order (oldest first).
  std::vector<SeriesPoint> Points() const {
    std::vector<SeriesPoint> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
      out = ring_;
    } else {
      out.insert(out.end(), ring_.begin() + static_cast<long>(next_),
                 ring_.end());
      out.insert(out.end(), ring_.begin(),
                 ring_.begin() + static_cast<long>(next_));
    }
    return out;
  }

  size_t size() const { return ring_.size(); }
  bool empty() const { return ring_.empty(); }
  /// Newest point (must not be called on an empty ring).
  const SeriesPoint& Back() const {
    if (ring_.size() < capacity_) return ring_.back();
    return ring_[(next_ + capacity_ - 1) % capacity_];
  }

 private:
  size_t capacity_;
  std::vector<SeriesPoint> ring_;  // Grows to capacity_, then wraps.
  size_t next_ = 0;
};

struct MonitorOptions {
  /// Tick period of the background sampler thread. <= 0 disables the
  /// thread entirely: the owner drives ticks with TickOnce() — the mode
  /// deterministic tests and simulations use.
  int64_t period_ms = 100;
  /// Points retained per series (ring capacity).
  size_t history = 240;
  /// EWMA weight of the newest per-tick rate (1.0 = no smoothing).
  double alpha = 0.3;
  /// Bound on distinct series tracked; once reached, metrics first seen
  /// later get current-value gauges but no history. Keeps a plan with an
  /// unbounded label space (per-key metrics) from growing the monitor
  /// without limit.
  size_t max_series = 512;
};

/// Continuous monitoring over a MetricsRegistry: a background sampler
/// that ticks at a fixed period, snapshots the registry, derives
/// per-tick deltas -> EWMA rates (stream input rate, per-operator
/// throughput and windowed selectivity, queue backlog, latency
/// quantiles), stores per-metric history in fixed-capacity ring buffers,
/// and republishes the derived values as `sqp_monitor_*` gauges through
/// a registry collector — so one TakeSnapshot (or one /metrics scrape)
/// sees both the raw counters and the rates the adaptation layer acts
/// on. This is the StreaMon/QoS-monitor role from the tutorial: the
/// observation loop that scheduling and shedding decisions read.
///
/// Threading: Start() spawns the sampler; TickOnce() may also be called
/// manually (the two are serialized by the monitor mutex). Tick
/// listeners run on the ticking thread *after* the monitor state is
/// updated and with no monitor/registry lock held, so they may freely
/// read rates, take snapshots, or adjust operators.
class Monitor {
 public:
  explicit Monitor(MetricsRegistry* registry, MonitorOptions options = {});
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Spawns the sampler thread (no-op when period_ms <= 0 or already
  /// running).
  void Start();
  /// Stops and joins the sampler thread. Safe to call repeatedly.
  void Stop();
  bool running() const { return running_; }

  /// Takes one monitoring sample now: snapshot -> deltas -> rates ->
  /// history -> listeners. `dt_override_s` > 0 substitutes the wall
  /// interval used for rate math (deterministic tests); 0 measures.
  void TickOnce(double dt_override_s = 0.0);

  /// Registers a named callback invoked after every tick (re-registering
  /// a name replaces it). Listeners drive closed-loop consumers — the
  /// engine's adaptive shedding hooks in here.
  void AddTickListener(const std::string& name,
                       std::function<void(uint64_t tick)> fn);
  /// Unregisters and then barriers on the in-flight tick: when this
  /// returns, the named listener is guaranteed to not be running and to
  /// never run again — callers may free state the callback captured
  /// (query teardown relies on this).
  void RemoveTickListener(const std::string& name);

  uint64_t ticks() const;
  const MonitorOptions& options() const { return options_; }

  /// History API: names of all tracked series, one series' points, and
  /// the newest value of one series (0 when absent/empty).
  std::vector<std::string> SeriesNames() const;
  std::vector<SeriesPoint> Series(const std::string& name) const;
  double Current(const std::string& name) const;

  /// {"ticks":N,"period_ms":P,"series":[{"name":...,"points":[...]},..]}
  /// — the /series.json payload.
  std::string SeriesJson() const;

  /// Compact live dashboard (the sqpsh \top view): stream rates, per-op
  /// throughput/selectivity, per-query latency/backlog/drop rate.
  std::string TopString() const;

 private:
  struct RateState {
    double prev = 0.0;
    bool has_prev = false;
    double ewma = 0.0;
    bool has_ewma = false;
    /// Feeds one cumulative-counter reading; returns the updated EWMA
    /// rate (per second) or false before the first delta exists.
    bool Update(double value, double dt_s, double alpha, double* out);
  };
  /// A derived gauge republished into snapshots by the collector.
  struct Derived {
    std::string name;
    LabelSet labels;
    double value = 0.0;
  };

  void Loop();
  /// Appends to `series_[key]` (creating it capacity-capped) and returns
  /// whether the point was retained.
  bool RecordLocked(const std::string& key, SeriesPoint p);
  void Publish(SnapshotBuilder& builder) const;

  MetricsRegistry* registry_;
  MonitorOptions options_;

  mutable std::mutex mu_;
  /// Held for the duration of each tick's listener-invocation pass
  /// (listeners run outside mu_ on a copied list); RemoveTickListener
  /// acquires it after erasing to barrier on in-flight invocations.
  std::mutex invoke_mu_;
  uint64_t tick_count_ = 0;
  uint64_t start_ns_ = 0;
  uint64_t last_tick_ns_ = 0;
  std::map<std::string, RateState> rates_;
  std::map<std::string, SeriesRing> series_;
  std::vector<Derived> derived_;
  std::vector<std::pair<std::string, std::function<void(uint64_t)>>>
      listeners_;

  // Sampler thread plumbing. `cv_` lets Stop() interrupt a sleeping
  // sampler immediately instead of waiting out the period.
  std::thread thread_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;
  bool running_ = false;
};

}  // namespace obs
}  // namespace sqp

#endif  // SQP_OBS_MONITOR_H_
