#include "obs/monitor.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/strings.h"
#include "obs/trace.h"

namespace sqp {
namespace obs {

namespace {

/// Rendered series key for a raw sample: name{k=v,...}. Stable and
/// human-readable — it doubles as the /series.json series name.
std::string SampleKey(const std::string& name, const LabelSet& labels) {
  if (labels.empty()) return name;
  std::string key = name + "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += ",";
    key += labels[i].first;
    key += "=";
    key += labels[i].second;
  }
  key += "}";
  return key;
}

std::string OpKey(const OpSnapshot& o) {
  return o.query + "/" + o.op + "#" + std::to_string(o.index);
}

std::string FmtSeriesNum(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.6g", v);
}

}  // namespace

bool Monitor::RateState::Update(double value, double dt_s, double alpha,
                                double* out) {
  if (!has_prev) {
    prev = value;
    has_prev = true;
    return false;
  }
  if (dt_s <= 0.0) return false;
  // Counters are monotone; a negative delta means the metric was reset
  // (fresh registry entry reusing a key) — restart from the new value.
  double delta = value - prev;
  prev = value;
  if (delta < 0.0) delta = 0.0;
  const double rate = delta / dt_s;
  if (!has_ewma) {
    ewma = rate;
    has_ewma = true;
  } else {
    ewma = alpha * rate + (1.0 - alpha) * ewma;
  }
  *out = ewma;
  return true;
}

Monitor::Monitor(MetricsRegistry* registry, MonitorOptions options)
    : registry_(registry), options_(options) {
  if (options_.history == 0) options_.history = 1;
  if (!(options_.alpha > 0.0) || options_.alpha > 1.0) options_.alpha = 0.3;
  start_ns_ = NowNs();
  // Derived rates/backlogs reach exporters through the same collector
  // path executors use, so every snapshot shape stays uniform.
  registry_->AddCollector("monitor",
                          [this](SnapshotBuilder& b) { Publish(b); });
}

Monitor::~Monitor() {
  Stop();
  registry_->RemoveCollector("monitor");
}

void Monitor::Start() {
  if (running_ || options_.period_ms <= 0) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = false;
  }
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void Monitor::Stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_ = false;
}

void Monitor::Loop() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (!stop_requested_) {
    lock.unlock();
    TickOnce();
    lock.lock();
    wake_cv_.wait_for(lock, std::chrono::milliseconds(options_.period_ms),
                      [this] { return stop_requested_; });
  }
}

bool Monitor::RecordLocked(const std::string& key, SeriesPoint p) {
  auto it = series_.find(key);
  if (it == series_.end()) {
    if (series_.size() >= options_.max_series) return false;
    it = series_.emplace(key, SeriesRing(options_.history)).first;
  }
  it->second.Push(p);
  return true;
}

void Monitor::TickOnce(double dt_override_s) {
  // Snapshot first, with no monitor lock held: TakeSnapshot runs the
  // registry's collectors (including this monitor's own Publish, which
  // takes mu_), so grabbing mu_ before snapshotting would deadlock.
  Snapshot snap = registry_->TakeSnapshot();
  const uint64_t now = NowNs();

  uint64_t tick;
  {
    std::lock_guard<std::mutex> lock(mu_);
    double dt_s = dt_override_s;
    if (dt_s <= 0.0) {
      dt_s = last_tick_ns_ == 0
                 ? 0.0
                 : static_cast<double>(now - last_tick_ns_) * 1e-9;
    }
    last_tick_ns_ = now;
    tick = ++tick_count_;
    const uint64_t wall_ms = (now - start_ns_) / 1000000;
    const double alpha = options_.alpha;
    derived_.clear();
    derived_.push_back({"sqp_monitor_ticks_total", {},
                        static_cast<double>(tick)});

    // Raw samples: counters become EWMA rates, gauges are recorded
    // verbatim, histograms contribute p50/p99. Values the monitor itself
    // derived last tick come back through the collector — skip them or
    // the series set doubles every tick.
    for (const Sample& s : snap.samples) {
      if (s.name.rfind("sqp_monitor_", 0) == 0) continue;
      const std::string key = SampleKey(s.name, s.labels);
      switch (s.kind) {
        case MetricKind::kCounter: {
          double rate = 0.0;
          if (rates_[key].Update(s.value, dt_s, alpha, &rate)) {
            RecordLocked("rate(" + key + ")", {tick, wall_ms, rate});
            if (s.name == "sqp_stream_ingested_total") {
              derived_.push_back({"sqp_monitor_stream_rate", s.labels, rate});
            }
          }
          break;
        }
        case MetricKind::kGauge:
          RecordLocked(key, {tick, wall_ms, s.value});
          // The profiler's per-query output lag rides into the dashboard:
          // how far behind source event time each query's results run.
          if (s.name == "sqp_query_watermark_lag") {
            derived_.push_back(
                {"sqp_monitor_watermark_lag", s.labels, s.value});
          }
          break;
        case MetricKind::kHistogram: {
          RecordLocked("p50(" + key + ")",
                       {tick, wall_ms, s.hist.Quantile(0.5)});
          RecordLocked("p99(" + key + ")",
                       {tick, wall_ms, s.hist.Quantile(0.99)});
          if (s.name == "sqp_query_latency_ns") {
            derived_.push_back({"sqp_monitor_latency_p50_ns", s.labels,
                                s.hist.Quantile(0.5)});
            derived_.push_back({"sqp_monitor_latency_p99_ns", s.labels,
                                s.hist.Quantile(0.99)});
          }
          break;
        }
      }
    }

    // Per-operator throughput and *windowed* selectivity (delta out over
    // delta in this interval — the rate-model inputs, unlike the
    // cumulative ratio OpSnapshot reports).
    for (const OpSnapshot& o : snap.ops) {
      const std::string key = OpKey(o);
      const LabelSet labels = {{"query", o.query},
                               {"op", o.op},
                               {"index", std::to_string(o.index)}};
      RateState& in = rates_["opin(" + key + ")"];
      RateState& out = rates_["opout(" + key + ")"];
      double in_rate = 0.0;
      double out_rate = 0.0;
      const double prev_in = in.prev;
      const double prev_out = out.prev;
      const bool had = in.has_prev;
      const bool got_in = in.Update(static_cast<double>(o.tuples_in), dt_s,
                                    alpha, &in_rate);
      const bool got_out = out.Update(static_cast<double>(o.tuples_out),
                                      dt_s, alpha, &out_rate);
      if (got_out) {
        RecordLocked("rate(" + key + ")", {tick, wall_ms, out_rate});
        derived_.push_back({"sqp_monitor_op_rate", labels, out_rate});
      }
      if (had && got_in) {
        const double din = static_cast<double>(o.tuples_in) - prev_in;
        const double dout = static_cast<double>(o.tuples_out) - prev_out;
        if (din > 0.0) {
          const double sel = std::max(0.0, dout) / din;
          RecordLocked("sel(" + key + ")", {tick, wall_ms, sel});
          derived_.push_back({"sqp_monitor_op_selectivity", labels, sel});
        }
      }
    }

    // Queue backlog per query: the executors publish per-stage backlog
    // gauges; the monitor folds them into one number a shedder can act
    // on.
    std::map<std::string, double> backlog_by_query;
    for (const Sample& s : snap.samples) {
      if (s.name != "sqp_stage_backlog") continue;
      for (const auto& kv : s.labels) {
        if (kv.first == "query") backlog_by_query[kv.second] += s.value;
      }
    }
    for (const auto& [query, backlog] : backlog_by_query) {
      RecordLocked("backlog(" + query + ")", {tick, wall_ms, backlog});
      derived_.push_back(
          {"sqp_monitor_backlog", {{"query", query}}, backlog});
    }
  }

  // Listeners run with no monitor-state lock held: they may snapshot,
  // read Current(), or retune operators (the adaptive-shedding loop does
  // all three). invoke_mu_ brackets the pass so RemoveTickListener can
  // barrier on it — a removed listener's captured state is safe to free
  // the moment removal returns. invoke_mu_ MUST be held before the
  // listener list is copied: copying under mu_ alone would let the
  // remover's barrier acquire a momentarily-free invoke_mu_ between the
  // copy and the invocation pass, then free state the stale copy still
  // invokes. Lock order is invoke_mu_ -> mu_ (RemoveTickListener takes
  // them sequentially, never nested, so this cannot deadlock).
  {
    std::lock_guard<std::mutex> invoking(invoke_mu_);
    std::vector<std::pair<std::string, std::function<void(uint64_t)>>>
        listeners;
    {
      std::lock_guard<std::mutex> lock(mu_);
      listeners = listeners_;
    }
    for (auto& l : listeners) l.second(tick);
  }
}

void Monitor::Publish(SnapshotBuilder& builder) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Derived& d : derived_) {
    if (d.name == "sqp_monitor_ticks_total") {
      builder.AddCounter(d.name, d.labels, d.value);
    } else {
      builder.AddGauge(d.name, d.labels, d.value);
    }
  }
}

void Monitor::AddTickListener(const std::string& name,
                              std::function<void(uint64_t)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& l : listeners_) {
    if (l.first == name) {
      l.second = std::move(fn);
      return;
    }
  }
  listeners_.emplace_back(name, std::move(fn));
}

void Monitor::RemoveTickListener(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
      if (it->first == name) {
        listeners_.erase(it);
        break;
      }
    }
  }
  // A tick in flight copied the listener list before the erase above;
  // wait for that invocation pass to finish so the caller can safely
  // destroy whatever the listener captured.
  std::lock_guard<std::mutex> barrier(invoke_mu_);
}

uint64_t Monitor::ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tick_count_;
}

std::vector<std::string> Monitor::SeriesNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, ring] : series_) names.push_back(name);
  return names;
}

std::vector<SeriesPoint> Monitor::Series(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) return {};
  return it->second.Points();
}

double Monitor::Current(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end() || it->second.empty()) return 0.0;
  return it->second.Back().value;
}

std::string Monitor::SeriesJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"ticks\":" + std::to_string(tick_count_) +
                    ",\"period_ms\":" + std::to_string(options_.period_ms) +
                    ",\"series\":[";
  bool first = true;
  for (const auto& [name, ring] : series_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(name) + "\",\"points\":[";
    std::vector<SeriesPoint> pts = ring.Points();
    for (size_t i = 0; i < pts.size(); ++i) {
      if (i > 0) out += ",";
      out += "{\"tick\":" + std::to_string(pts[i].tick) +
             ",\"ms\":" + std::to_string(pts[i].wall_ms) + ",\"v\":" +
             FmtSeriesNum(pts[i].value) + "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string Monitor::TopString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out =
      StrFormat("monitor tick %llu (period %lld ms, %zu series)\n",
                static_cast<unsigned long long>(tick_count_),
                static_cast<long long>(options_.period_ms), series_.size());
  // One pass over the derived gauges groups the dashboard by kind: the
  // monitor already folded raw counters into exactly the numbers a human
  // watches (rates, selectivities, backlog, latency quantiles).
  auto section = [&](const char* title, const char* name,
                     const char* unit, double scale) {
    bool any = false;
    for (const Derived& d : derived_) {
      if (d.name != name) continue;
      if (!any) out += StrFormat("%s\n", title);
      any = true;
      std::string label;
      for (const auto& kv : d.labels) {
        if (!label.empty()) label += " ";
        label += kv.first + "=" + kv.second;
      }
      out += StrFormat("  %-44s %12.1f %s\n", label.c_str(), d.value * scale,
                       unit);
    }
  };
  section("stream input rate:", "sqp_monitor_stream_rate", "tuples/s", 1.0);
  section("operator throughput:", "sqp_monitor_op_rate", "tuples/s", 1.0);
  section("operator selectivity (windowed):", "sqp_monitor_op_selectivity",
          "", 1.0);
  section("queue backlog:", "sqp_monitor_backlog", "elements", 1.0);
  section("watermark lag (event time):", "sqp_monitor_watermark_lag",
          "ts units", 1.0);
  section("latency p50:", "sqp_monitor_latency_p50_ns", "ms", 1e-6);
  section("latency p99:", "sqp_monitor_latency_p99_ns", "ms", 1e-6);
  // Shedding state rides in as plain gauges the engine owns.
  for (const auto& [name, ring] : series_) {
    if (name.rfind("sqp_shed_drop_rate", 0) != 0 || ring.empty()) continue;
    out += StrFormat("drop rate %-34s %12.4f\n", name.c_str() + 18,
                     ring.Back().value);
  }
  return out;
}

}  // namespace obs
}  // namespace sqp
