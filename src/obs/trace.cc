#include "obs/trace.h"

#include <chrono>

namespace sqp {
namespace obs {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ThreadObsContext& ObsContext() {
  thread_local ThreadObsContext ctx;
  return ctx;
}

void Tracer::Record(uint64_t trace_id, uint32_t hop, const std::string& op,
                    uint64_t ts_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent ev{trace_id, hop, op, ts_ns};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[next_slot_] = std::move(ev);
  }
  next_slot_ = (next_slot_ + 1) % capacity_;
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // next_slot_ is the oldest entry once the ring has wrapped.
    out.insert(out.end(), ring_.begin() + static_cast<long>(next_slot_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<long>(next_slot_));
  }
  return out;
}

}  // namespace obs
}  // namespace sqp
