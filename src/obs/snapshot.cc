#include "obs/snapshot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/strings.h"

namespace sqp {
namespace obs {

namespace {

/// Renders a metric value: integral doubles (the common case — counters,
/// depths) print without a fractional part so JSON/Prometheus goldens
/// stay stable; everything else gets shortest-ish %.6g.
std::string FmtNum(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.6g", v);
}

std::string PromLabels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first;
    out += "=\"";
    // Prometheus label escaping: backslash, quote, newline.
    for (char c : labels[i].second) {
      if (c == '\\' || c == '"') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    out += "\"";
  }
  out += "}";
  return out;
}

LabelSet WithLabel(LabelSet labels, const std::string& k,
                   const std::string& v) {
  labels.emplace_back(k, v);
  return labels;
}

void PromHistogram(std::string* out, const std::string& name,
                   const LabelSet& labels, const HistogramData& h) {
  uint64_t cum = 0;
  for (int b = 0; b < HistogramData::kNumBuckets; ++b) {
    if (h.buckets[static_cast<size_t>(b)] == 0) continue;
    cum += h.buckets[static_cast<size_t>(b)];
    std::string le = b == HistogramData::kNumBuckets - 1
                         ? "+Inf"
                         : std::to_string(HistogramData::BucketUpperBound(b));
    *out += name + "_bucket" + PromLabels(WithLabel(labels, "le", le)) + " " +
            std::to_string(cum) + "\n";
  }
  *out += name + "_bucket" + PromLabels(WithLabel(labels, "le", "+Inf")) +
          " " + std::to_string(h.count) + "\n";
  *out += name + "_sum" + PromLabels(labels) + " " + std::to_string(h.sum) +
          "\n";
  *out += name + "_count" + PromLabels(labels) + " " +
          std::to_string(h.count) + "\n";
}

/// Help strings of the engine's own metric families; unknown families
/// get no # HELP line (Prometheus does not require one).
const char* HelpFor(const std::string& name) {
  static const std::pair<const char*, const char*> kHelp[] = {
      {"sqp_stream_ingested_total", "Elements ingested per stream."},
      {"sqp_query_latency_ns",
       "Sampled end-to-end ingest-to-sink latency per query (ns)."},
      {"sqp_stage_enqueued", "Elements accepted into the stage queue."},
      {"sqp_stage_processed", "Elements delivered into the stage operator."},
      {"sqp_stage_batches", "Batched deliveries into the stage operator."},
      {"sqp_stage_dropped", "Elements shed at the stage queue bound."},
      {"sqp_stage_backlog", "Accepted-but-unprocessed elements."},
      {"sqp_stage_queue_depth", "Stage queue occupancy at snapshot time."},
      {"sqp_stage_max_queue_depth", "Stage queue high-water mark."},
      {"sqp_stage_busy_time", "Time spent processing in the stage."},
      {"sqp_monitor_ticks_total", "Monitor sampling ticks taken."},
      {"sqp_monitor_stream_rate", "EWMA stream input rate (tuples/s)."},
      {"sqp_monitor_op_rate", "EWMA operator output rate (tuples/s)."},
      {"sqp_monitor_op_selectivity",
       "Windowed operator selectivity (delta out / delta in)."},
      {"sqp_monitor_backlog", "Queued elements per query (monitor view)."},
      {"sqp_monitor_latency_p50_ns", "Monitor view of latency p50 (ns)."},
      {"sqp_monitor_latency_p99_ns", "Monitor view of latency p99 (ns)."},
      {"sqp_dur_records_total", "Records appended to the durable archive."},
      {"sqp_dur_bytes_total", "Bytes appended to the durable archive."},
      {"sqp_dur_flushes_total", "Durable archive flush syncs."},
      {"sqp_dur_checkpoints_total", "Engine checkpoints written."},
      {"sqp_dur_replayed_total", "Archive records replayed into queries."},
      {"sqp_dur_checkpoint_position",
       "Archive sequence the newest checkpoint captured."},
      {"sqp_dur_recovery_replayed",
       "Elements replayed by the last crash recovery."},
      {"sqp_dur_recovery_restored_queries",
       "Queries restored from the checkpoint by the last recovery."},
      {"sqp_dur_recovery_seconds", "Wall time of the last recovery replay."},
      {"sqp_shard_skew",
       "Max/mean routed-tuple ratio across shards (1.0 = balanced)."},
      {"sqp_shard_count", "Worker shards behind the operator."},
      {"sqp_shard_routed_total", "Tuples routed to the shard."},
      {"sqp_shard_merged_total", "Tuples merged out of the shard."},
      {"sqp_shard_dropped_total", "Tuples shed at the shard queue bound."},
      {"sqp_shard_backlog", "Routed-but-unmerged elements in the shard."},
      {"sqp_shard_max_queue_depth", "Shard queue high-water mark."},
      {"sqp_shard_busy_time", "Time the shard spent processing."},
      {"sqp_shard_state_bytes", "Operator state held by the shard."},
      {"sqp_query_source_watermark",
       "Latest source watermark the profiler saw for the query."},
      {"sqp_query_watermark_lag",
       "Source watermark minus the query's last output watermark."},
      {"sqp_monitor_watermark_lag",
       "Monitor view of per-query event-time output lag."},
      {"sqp_shed_drop_rate", "Adaptive shedding drop probability."},
      {"sqp_shed_dropped_total", "Tuples shed by the adaptive gate."},
      {"sqp_shed_backlog", "Backlog the shedding controller last saw."},
      {"sqp_op_tuples_in_total", "Tuples into the operator."},
      {"sqp_op_tuples_out_total", "Tuples out of the operator."},
      {"sqp_op_puncts_in_total", "Punctuations into the operator."},
      {"sqp_op_puncts_out_total", "Punctuations out of the operator."},
      {"sqp_op_batches_total", "Batched deliveries into the operator."},
      {"sqp_op_busy_ns_total", "Sampled operator processing time (ns)."},
      {"sqp_op_queue_depth_hw", "Operator input queue high-water mark."},
      {"sqp_op_selectivity", "Lifetime operator selectivity (out/in)."},
  };
  for (const auto& kv : kHelp) {
    if (name == kv.first) return kv.second;
  }
  return nullptr;
}

void JsonHistogram(std::string* out, const HistogramData& h) {
  *out += "{\"count\":" + std::to_string(h.count) +
          ",\"sum\":" + std::to_string(h.sum) + ",\"p50\":" +
          FmtNum(h.Quantile(0.5)) + ",\"p99\":" + FmtNum(h.Quantile(0.99)) +
          ",\"buckets\":[";
  bool first = true;
  for (int b = 0; b < HistogramData::kNumBuckets; ++b) {
    uint64_t n = h.buckets[static_cast<size_t>(b)];
    if (n == 0) continue;
    if (!first) *out += ",";
    first = false;
    *out += "{\"le\":" + std::to_string(HistogramData::BucketUpperBound(b)) +
            ",\"n\":" + std::to_string(n) + "}";
  }
  *out += "]}";
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Snapshot::ToJson() const {
  std::string out = "{\"metrics\":[";
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(s.name) + "\"";
    if (!s.labels.empty()) {
      out += ",\"labels\":{";
      for (size_t j = 0; j < s.labels.size(); ++j) {
        if (j > 0) out += ",";
        // Appended piecewise: GCC 12's -Wrestrict false-positives on
        // `"lit" + std::string&&` chains under -O2 (PR105329).
        out += "\"";
        out += JsonEscape(s.labels[j].first);
        out += "\":\"";
        out += JsonEscape(s.labels[j].second);
        out += "\"";
      }
      out += "}";
    }
    switch (s.kind) {
      case MetricKind::kCounter:
        out += ",\"type\":\"counter\",\"value\":" + FmtNum(s.value);
        break;
      case MetricKind::kGauge:
        out += ",\"type\":\"gauge\",\"value\":" + FmtNum(s.value);
        break;
      case MetricKind::kHistogram:
        out += ",\"type\":\"histogram\",\"value\":";
        JsonHistogram(&out, s.hist);
        break;
    }
    out += "}";
  }
  out += "],\"operators\":[";
  for (size_t i = 0; i < ops.size(); ++i) {
    const OpSnapshot& o = ops[i];
    if (i > 0) out += ",";
    out += "{\"query\":\"" + JsonEscape(o.query) + "\",\"op\":\"" +
           JsonEscape(o.op) + "\",\"index\":" + std::to_string(o.index) +
           ",\"tuples_in\":" + std::to_string(o.tuples_in) +
           ",\"tuples_out\":" + std::to_string(o.tuples_out) +
           ",\"puncts_in\":" + std::to_string(o.puncts_in) +
           ",\"puncts_out\":" + std::to_string(o.puncts_out) +
           ",\"selectivity\":" + StrFormat("%.4f", o.Selectivity()) +
           ",\"batches\":" + std::to_string(o.batches) +
           ",\"busy_ns\":" + std::to_string(o.busy_ns) +
           ",\"queue_depth_hw\":" + std::to_string(o.queue_depth_hw) + "}";
  }
  out += "],\"trace\":[";
  for (size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& t = trace[i];
    if (i > 0) out += ",";
    out += "{\"id\":" + std::to_string(t.trace_id) +
           ",\"hop\":" + std::to_string(t.hop) + ",\"op\":\"" +
           JsonEscape(t.op) + "\",\"ts_ns\":" + std::to_string(t.ts_ns) + "}";
  }
  out += "]}";
  return out;
}

std::string Snapshot::ToPrometheus() const {
  std::string out;
  // The exposition format requires all samples of a family in one block
  // under a single # TYPE line; collectors interleave families (e.g.
  // stage stats repeat per stage), so group by name in first-seen order.
  std::vector<std::pair<std::string, std::vector<const Sample*>>> families;
  for (const Sample& s : samples) {
    std::vector<const Sample*>* slot = nullptr;
    for (auto& fam : families) {
      if (fam.first == s.name) {
        slot = &fam.second;
        break;
      }
    }
    if (slot == nullptr) {
      families.emplace_back(s.name, std::vector<const Sample*>());
      slot = &families.back().second;
    }
    slot->push_back(&s);
  }
  for (const auto& fam : families) {
    const std::string& name = fam.first;
    const MetricKind kind = fam.second.front()->kind;
    if (const char* help = HelpFor(name)) {
      out += "# HELP " + name + " " + help + "\n";
    }
    switch (kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += "# TYPE " + name +
               (kind == MetricKind::kCounter ? " counter\n" : " gauge\n");
        for (const Sample* s : fam.second) {
          out += name + PromLabels(s->labels) + " " + FmtNum(s->value) + "\n";
        }
        break;
      case MetricKind::kHistogram:
        out += "# TYPE " + name + " histogram\n";
        for (const Sample* s : fam.second) {
          PromHistogram(&out, name, s->labels, s->hist);
        }
        // Prometheus has no native quantile in the histogram type;
        // surface p50/p99 as derived gauge families so scrapes see the
        // same numbers as the JSON/pretty exports.
        out += "# TYPE " + name + "_p50 gauge\n";
        for (const Sample* s : fam.second) {
          out += name + "_p50" + PromLabels(s->labels) + " " +
                 FmtNum(s->hist.Quantile(0.5)) + "\n";
        }
        out += "# TYPE " + name + "_p99 gauge\n";
        for (const Sample* s : fam.second) {
          out += name + "_p99" + PromLabels(s->labels) + " " +
                 FmtNum(s->hist.Quantile(0.99)) + "\n";
        }
        break;
    }
  }
  if (!ops.empty()) {
    struct Field {
      const char* name;
      const char* type;
      uint64_t OpSnapshot::*member;
    };
    static const Field kFields[] = {
        {"sqp_op_tuples_in_total", "counter", &OpSnapshot::tuples_in},
        {"sqp_op_tuples_out_total", "counter", &OpSnapshot::tuples_out},
        {"sqp_op_puncts_in_total", "counter", &OpSnapshot::puncts_in},
        {"sqp_op_puncts_out_total", "counter", &OpSnapshot::puncts_out},
        {"sqp_op_batches_total", "counter", &OpSnapshot::batches},
        {"sqp_op_busy_ns_total", "counter", &OpSnapshot::busy_ns},
        {"sqp_op_queue_depth_hw", "gauge", &OpSnapshot::queue_depth_hw},
    };
    for (const Field& f : kFields) {
      if (const char* help = HelpFor(f.name)) {
        out += std::string("# HELP ") + f.name + " " + help + "\n";
      }
      out += std::string("# TYPE ") + f.name + " " + f.type + "\n";
      for (const OpSnapshot& o : ops) {
        out += std::string(f.name) +
               PromLabels({{"query", o.query}, {"op", o.op},
                           {"index", std::to_string(o.index)}}) +
               " " + std::to_string(o.*(f.member)) + "\n";
      }
    }
    if (const char* help = HelpFor("sqp_op_selectivity")) {
      out += std::string("# HELP sqp_op_selectivity ") + help + "\n";
    }
    out += "# TYPE sqp_op_selectivity gauge\n";
    for (const OpSnapshot& o : ops) {
      out += "sqp_op_selectivity" +
             PromLabels({{"query", o.query}, {"op", o.op},
                         {"index", std::to_string(o.index)}}) +
             " " + StrFormat("%.4f", o.Selectivity()) + "\n";
    }
  }
  return out;
}

std::string Snapshot::Pretty() const {
  std::string out;
  if (!ops.empty()) {
    out += StrFormat("%-6s %-24s %12s %12s %8s %10s %8s %8s\n", "query", "op",
                     "in", "out", "sel", "busy_ms", "q_hw", "batches");
    for (const OpSnapshot& o : ops) {
      out += StrFormat(
          "%-6s %-24s %12llu %12llu %8.4f %10.3f %8llu %8llu\n",
          o.query.c_str(), o.op.c_str(),
          static_cast<unsigned long long>(o.tuples_in),
          static_cast<unsigned long long>(o.tuples_out), o.Selectivity(),
          static_cast<double>(o.busy_ns) * 1e-6,
          static_cast<unsigned long long>(o.queue_depth_hw),
          static_cast<unsigned long long>(o.batches));
    }
  }
  if (!samples.empty()) {
    if (!out.empty()) out += "\n";
    for (const Sample& s : samples) {
      std::string label;
      for (const auto& kv : s.labels) {
        if (!label.empty()) label += ",";
        label += kv.first + "=" + kv.second;
      }
      std::string name = s.name + (label.empty() ? "" : "{" + label + "}");
      if (s.kind == MetricKind::kHistogram) {
        out += StrFormat("%-52s n=%llu mean=%.1f p50=%.1f p99=%.1f\n",
                         name.c_str(),
                         static_cast<unsigned long long>(s.hist.count),
                         s.hist.Mean(), s.hist.Quantile(0.5),
                         s.hist.Quantile(0.99));
      } else {
        out += StrFormat("%-52s %s\n", name.c_str(), FmtNum(s.value).c_str());
      }
    }
  }
  if (!trace.empty()) {
    out += StrFormat("\nsampled lineage (%zu hops, newest last):\n",
                     trace.size());
    uint64_t base = 0;
    uint64_t cur_id = 0;
    for (const TraceEvent& t : trace) {
      if (t.trace_id != cur_id) {
        cur_id = t.trace_id;
        base = t.ts_ns;
      }
      out += StrFormat("  #%-6llu hop%-2u %-24s +%.1fus\n",
                       static_cast<unsigned long long>(t.trace_id), t.hop,
                       t.op.c_str(),
                       static_cast<double>(t.ts_ns - base) * 1e-3);
    }
  }
  if (out.empty()) out = "(no metrics)\n";
  return out;
}

}  // namespace obs
}  // namespace sqp
