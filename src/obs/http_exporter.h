#ifndef SQP_OBS_HTTP_EXPORTER_H_
#define SQP_OBS_HTTP_EXPORTER_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "obs/event_log.h"
#include "obs/registry.h"
#include "server/net_listener.h"

namespace sqp {
namespace obs {

class Monitor;

/// Dependency-free metrics scrape endpoint: an HTTP/1.0 server with
/// three routes, each answered from a fresh registry snapshot so a
/// scrape never blocks the hot path:
///
///   GET /metrics         Prometheus text exposition
///   GET /snapshot.json   Snapshot::ToJson()
///   GET /series.json     Monitor::SeriesJson() (empty shell without one)
///   GET /events.json     EventLog::ToJson() (404 without SetEventLog);
///                        ?after=<seq>&max=<n> tail parameters
///   GET /profile/<q>.json per-query EXPLAIN ANALYZE profile via the
///                        SetProfileSource callback (404 without one)
///
/// The socket plumbing (accept loop, per-connection recv/send timeouts,
/// shutdown) lives in server::NetListener — the same listener the query
/// server uses. The exporter runs it in sequential mode: a scrape
/// target serving one Prometheus server (the intended load) needs no
/// concurrency, and a slow client is bounded by the listener's
/// per-connection socket timeouts rather than a thread pool. Start with
/// Serve(port); port 0 binds an ephemeral port (tests), readable via
/// port().
class HttpExporter {
 public:
  /// `monitor` may be null: /series.json then answers with an empty
  /// series list. Neither pointer is owned; both must outlive Stop().
  explicit HttpExporter(const MetricsRegistry* registry,
                        const Monitor* monitor = nullptr);
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Wires the structured event log behind /events.json (not owned;
  /// must outlive Stop()). Call before Serve.
  void SetEventLog(const EventLog* events) { events_ = events; }

  /// Callback answering /profile/<query>.json: fills *json with the
  /// query's profile and returns true, or returns false for an unknown
  /// query (404). Must be thread-safe against the serving thread. Call
  /// before Serve.
  using ProfileSource = std::function<bool(const std::string&, std::string*)>;
  void SetProfileSource(ProfileSource source) {
    profile_source_ = std::move(source);
  }

  /// Binds 0.0.0.0:`port`, starts listening, and spawns the accept loop.
  Status Serve(int port);
  /// Shuts the listener down and joins the accept loop.
  void Stop();

  bool serving() const { return listener_.serving(); }
  /// Bound port (resolves 0 to the kernel-assigned ephemeral port).
  int port() const { return listener_.port(); }

  /// Routes one request target to a (status line, content type, body)
  /// response. Exposed for direct unit testing of the routing table.
  struct Response {
    int code = 200;
    std::string content_type;
    std::string body;
  };
  Response Handle(const std::string& target) const;

 private:
  void ServeConnection(int fd);

  const MetricsRegistry* registry_;
  const Monitor* monitor_;
  const EventLog* events_ = nullptr;
  ProfileSource profile_source_;
  server::NetListener listener_;
};

}  // namespace obs
}  // namespace sqp

#endif  // SQP_OBS_HTTP_EXPORTER_H_
