#ifndef SQP_OBS_REGISTRY_H_
#define SQP_OBS_REGISTRY_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/op_metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"

namespace sqp {
namespace obs {

/// Engine-wide metric registry: the single place queue depths,
/// selectivities, and per-operator rates are published so schedulers,
/// shedders, and exporters read one source of truth instead of private
/// counters.
///
/// Concurrency contract: Get* registration takes a lock (do it at plan
/// build time); the returned metric pointers are stable for the
/// registry's lifetime and update lock-free with relaxed atomics.
/// TakeSnapshot may run concurrently with updates from any thread — it
/// reads a statistically consistent view, never tears an individual
/// metric, and never blocks writers.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(size_t trace_capacity = 2048)
      : tracer_(trace_capacity) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates a metric. Same (name, labels) returns the same
  /// instance, so independent call sites can share a counter.
  Counter* GetCounter(const std::string& name, LabelSet labels = {});
  Gauge* GetGauge(const std::string& name, LabelSet labels = {});
  Histogram* GetHistogram(const std::string& name, LabelSet labels = {});

  /// Per-operator slot keyed by (query label, op name, plan index).
  OpMetrics* GetOpMetrics(const std::string& query, const std::string& op,
                          int index);

  /// Sampled lineage tracing (disabled until SetSampleEvery > 0).
  Tracer* tracer() { return &tracer_; }
  /// Convenience: sample every Nth element (0 = off).
  void EnableTracing(uint64_t sample_every) {
    tracer_.SetSampleEvery(sample_every);
  }

  /// Registers a named callback evaluated at snapshot time — how
  /// external point-in-time sources (executor stage stats) publish
  /// without a hot-path dependency on the registry. Re-registering a
  /// name replaces the collector; RemoveCollector drops it (call before
  /// the collected object dies if the registry outlives it).
  void AddCollector(const std::string& name,
                    std::function<void(SnapshotBuilder&)> fn);
  void RemoveCollector(const std::string& name);

  /// Renders everything: registered metrics in registration order, then
  /// per-op metrics, collectors, and the trace ring.
  Snapshot TakeSnapshot() const;

 private:
  struct Entry {
    std::string name;
    LabelSet labels;
    MetricKind kind = MetricKind::kGauge;
    // Exactly one is used, per kind (deque-stored: stable addresses).
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };
  struct OpEntry {
    std::string query;
    std::string op;
    int index = 0;
    OpMetrics metrics;
  };

  mutable std::mutex mu_;
  std::deque<Entry> entries_;
  std::map<std::string, Entry*> by_key_;
  std::deque<OpEntry> op_entries_;
  std::map<std::string, OpEntry*> ops_by_key_;
  std::vector<std::pair<std::string, std::function<void(SnapshotBuilder&)>>>
      collectors_;
  Tracer tracer_;
};

}  // namespace obs
}  // namespace sqp

#endif  // SQP_OBS_REGISTRY_H_
