#include "obs/metrics.h"

#include <limits>

namespace sqp {
namespace obs {

uint64_t HistogramData::BucketUpperBound(int b) {
  if (b <= 0) return 0;
  if (b >= kNumBuckets - 1) return std::numeric_limits<uint64_t>::max();
  return (uint64_t{1} << b) - 1;
}

uint64_t HistogramData::BucketLowerBound(int b) {
  if (b <= 0) return 0;
  return uint64_t{1} << (b - 1);
}

double HistogramData::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based, ceil so q=1 hits the max
  // bucket and q=0 the min).
  double target = q * static_cast<double>(count);
  if (target < 1.0) target = 1.0;
  uint64_t cum = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets[static_cast<size_t>(b)] == 0) continue;
    uint64_t prev = cum;
    cum += buckets[static_cast<size_t>(b)];
    if (static_cast<double>(cum) >= target) {
      double lo = static_cast<double>(BucketLowerBound(b));
      double hi = static_cast<double>(BucketUpperBound(b));
      double frac = (target - static_cast<double>(prev)) /
                    static_cast<double>(buckets[static_cast<size_t>(b)]);
      return lo + frac * (hi - lo);
    }
  }
  return static_cast<double>(BucketUpperBound(kNumBuckets - 1));
}

HistogramData Histogram::Data() const {
  HistogramData d;
  for (int b = 0; b < HistogramData::kNumBuckets; ++b) {
    uint64_t n = buckets_[static_cast<size_t>(b)].load(
        std::memory_order_relaxed);
    d.buckets[static_cast<size_t>(b)] = n;
    d.count += n;
  }
  d.sum = sum_.load(std::memory_order_relaxed);
  return d;
}

}  // namespace obs
}  // namespace sqp
