#include "sched/stage_stats.h"

#include "common/strings.h"

namespace sqp {
namespace sched {

std::string StageStats::ToString() const {
  std::string out;
  ForEachStageStatField(*this, [&](const char* name, double v, bool) {
    if (!out.empty()) out += ' ';
    if (v == static_cast<double>(static_cast<uint64_t>(v))) {
      out += StrFormat("%s=%llu", name,
                       static_cast<unsigned long long>(v));
    } else {
      out += StrFormat("%s=%.6f", name, v);
    }
  });
  return out;
}

void PublishStageStats(obs::SnapshotBuilder& builder,
                       const obs::LabelSet& labels, const StageStats& s) {
  ForEachStageStatField(s, [&](const char* name, double v, bool counter) {
    std::string metric = std::string("sqp_stage_") + name;
    if (counter) {
      builder.AddCounter(std::move(metric), labels, v);
    } else {
      builder.AddGauge(std::move(metric), labels, v);
    }
  });
}

}  // namespace sched
}  // namespace sqp
