#ifndef SQP_SCHED_PARALLEL_EXECUTOR_H_
#define SQP_SCHED_PARALLEL_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/operator.h"
#include "sched/stage_stats.h"

namespace sqp {

/// What a stage's bounded input queue does when it is full.
enum class Backpressure {
  /// Producer blocks until the stage's worker frees a slot — loss-free,
  /// propagates pressure upstream (the punctuation/feedback style of
  /// inter-operator flow control).
  kBlock,
  /// The arriving element is dropped and counted — the classic DSMS
  /// overload response (load shedding at the queue).
  kDropNewest,
};

/// Runs a linear chain of operators with one worker thread per stage,
/// connected by bounded queues — the threaded counterpart of
/// QueuedExecutor, trading its explicit scheduling policy for actual
/// pipeline parallelism.
///
/// Threading contract:
///  - Each stage's operator is pushed and flushed only by that stage's
///    worker thread (operators stay single-caller; debug builds assert
///    this — see Operator::AssertSingleCaller).
///  - `Arrive` may be called from any number of producer threads (the
///    entry queue is MPSC); inter-stage queues are SPSC.
///  - The sink runs on the last stage's worker thread. Read results only
///    after Drain()/Stop() returned (the join gives happens-before).
///
/// Punctuations are never dropped: losing a watermark would stall every
/// windowed operator downstream, so punctuations bypass queue limits
/// (they may transiently exceed `queue_limit` by their own count).
///
/// Shutdown protocol:
///  - Drain(): closes the entry queue; each worker finishes its backlog,
///    flushes its operator (close-out emissions flow into the next
///    queue), closes the downstream queue and exits — a clean cascade
///    that ends with the sink flushed.
///  - Stop(): abandons queued elements and joins workers without
///    flushing. Safe to call at any time, including while producers are
///    blocked on a full queue.
class ParallelExecutor {
 public:
  struct Stage {
    Operator* op = nullptr;
    /// Bound on the stage's input queue in elements (0 = unbounded).
    size_t queue_limit = 0;
    /// Policy when the bounded queue is full.
    Backpressure backpressure = Backpressure::kBlock;
    /// Input port elements from the upstream queue are delivered on
    /// (port 0 for plain chains; set when wrapping pre-wired plans).
    int in_port = 0;
    /// The worker is only woken once this many elements are queued (or a
    /// punctuation arrives, the queue fills, or the input closes) — the
    /// hand-off granularity. Larger batches amortize wakeups and context
    /// switches; 1 wakes the worker per element. Latency stays bounded:
    /// workers also poll on a short timeout, so a sub-batch trickle is
    /// picked up within ~1ms rather than sitting until the next batch.
    size_t wake_batch = 64;
    /// Hand-off granularity out of the stage's queue: the worker claims
    /// at most this many elements per lock acquisition and delivers the
    /// run as one Operator::ProcessBatch call, so batches keep
    /// propagating downstream through Emit coalescing. <= 1 reproduces
    /// the classic element-at-a-time executor loop — one lock
    /// acquisition and one virtual Process per element. Order (tuples
    /// and punctuations alike) is preserved either way, and the bound
    /// also caps how long a claimed run can delay the relay flush.
    size_t max_batch = 64;
    /// Columnar delivery: the worker converts each claimed same-port
    /// run of row elements into a ColumnBatch (ColumnBatch::FromRows)
    /// and hands it to the operator as one ProcessColumns call, falling
    /// back to ProcessBatch when conversion fails (ragged or mixed-type
    /// rows). Columnar batches emitted by an upstream stage cross this
    /// stage's queue intact regardless of the flag — it only controls
    /// row→column conversion at this stage's delivery point. Meaningful
    /// only when the operator reports SupportsColumns(in_port).
    bool columnar = false;
  };

  /// `sink` receives the last stage's output; pass nullptr to keep the
  /// last operator's existing wiring (used when wrapping a plan whose
  /// root is already connected).
  ParallelExecutor(std::vector<Stage> stages, Operator* sink);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  /// Spawns one worker per stage. Call once, before the first Arrive.
  void Start();

  /// Enqueues an element into the first stage on its configured port.
  /// Returns false if it was dropped (bounded queue full under
  /// kDropNewest, or the executor is stopped/drained).
  bool Arrive(Element e);

  /// Same, delivering on an explicit port (multi-input plan wrappers).
  bool ArriveOn(Element e, int port);

  /// Closes the input and waits for the flush cascade to finish.
  void Drain();

  /// Abandons queued work and joins the workers (no flush).
  void Stop();

  bool running() const { return running_; }
  size_t num_stages() const { return stages_.size(); }

  /// Snapshot of one stage's counters (safe to call while running).
  sched::StageStats stage_stats(size_t i) const;
  /// Publishes every stage's counters (sqp_stage_*) under
  /// {base_labels..., stage=i, op=name} — typically registered as a
  /// MetricsRegistry collector by whoever owns the executor. Safe to
  /// call while the workers run.
  void CollectStats(obs::SnapshotBuilder& builder,
                    const obs::LabelSet& base_labels) const;
  /// Total drops across all stages.
  uint64_t dropped() const;
  /// Elements currently waiting across all stage queues.
  size_t QueuedElements() const;

 private:
  /// One queue slot: either a single row element (`cols == nullptr`) or
  /// a whole columnar batch crossing the stage boundary without
  /// materialization. Queue accounting (limits, depths, enqueued/
  /// processed/dropped counters) is in *elements*: a columnar item
  /// weighs its live rows plus punctuation slots, so `queue_limit`
  /// bounds the same quantity either way.
  struct Item {
    Element e;
    int port = 0;
    std::unique_ptr<ColumnBatch> cols;
    /// Enqueue timestamp for queue-wait attribution; stamped only when
    /// the receiving stage's operator has a profile bound (0 = unstamped
    /// — profiling disabled, no clock read on the hand-off path).
    uint64_t enq_ns = 0;

    /// Element count this item charges against queue accounting (min 1
    /// so even a fully-filtered columnar batch holds a queue slot).
    size_t Weight() const {
      if (cols == nullptr) return 1;
      size_t w = cols->ActiveRows() + cols->puncts.size();
      return w == 0 ? 1 : w;
    }
  };

  /// One stage's queue + worker + counters. Counters written by the
  /// owning threads under `mu` or as relaxed atomics (read-mostly
  /// snapshots); the queue itself is mutex+condvar, with batched pops so
  /// the lock is taken once per batch, not per element.
  struct StageState {
    Stage cfg;
    mutable std::mutex mu;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::deque<Item> q;
    /// Sum of item weights in `q` (elements, not slots): what limits,
    /// wake thresholds and depth counters measure. Guarded by mu.
    size_t q_rows = 0;
    /// No further input will ever be enqueued (drain cascade reached us).
    bool closed = false;
    // Counters (guarded by mu except busy_ns, owned by the worker).
    uint64_t enqueued = 0;
    uint64_t processed = 0;
    uint64_t batches = 0;  // ProcessBatch deliveries (0 if max_batch <= 1).
    uint64_t dropped = 0;
    uint64_t max_depth = 0;
    std::atomic<uint64_t> busy_ns{0};
    std::thread worker;
  };

  class Relay;

  bool Enqueue(size_t stage, Item item);
  /// Appends a whole chunk under one lock acquisition (the relay path):
  /// honors the limit per element, counts kDropNewest drops, and wakes
  /// the consumer once per chunk instead of once per element.
  void EnqueueBatch(size_t stage, std::vector<Item>& items);
  void CloseStage(size_t stage);
  void WorkerLoop(size_t stage);

  std::vector<Stage> stages_;
  std::vector<std::unique_ptr<StageState>> states_;
  std::vector<std::unique_ptr<Relay>> relays_;
  Operator* sink_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::atomic<bool> running_{false};
};

}  // namespace sqp

#endif  // SQP_SCHED_PARALLEL_EXECUTOR_H_
