#include "sched/parallel_executor.h"

#include <cassert>
#include <chrono>

namespace sqp {

/// Stage i's downstream: runs on worker i, buffers emissions and hands
/// them to stage i+1's queue a chunk at a time — one lock acquisition
/// and at most one wakeup per chunk instead of per element. Punctuations
/// flush the buffer immediately (they are the latency-critical control
/// path, and their ordering relative to buffered tuples is preserved by
/// flushing tuples first).
class ParallelExecutor::Relay : public Operator {
 public:
  Relay(ParallelExecutor* exec, size_t next, int port, size_t cap)
      : Operator("relay"),
        exec_(exec),
        next_(next),
        port_(port),
        cap_(cap == 0 ? 1 : cap) {
    buf_.reserve(cap_);
  }

  void Push(const Element& e, int /*port*/ = 0) override {
    buf_.push_back(Item{e, port_, nullptr});
    if (e.is_punctuation() || buf_.size() >= cap_) FlushBuffer();
  }

  /// Reached by the upstream operator's flush cascade.
  void Flush() override { FlushBuffer(); }

  bool SupportsColumns(int /*port*/ = 0) const override { return true; }

 protected:
  /// Batched hand-off from the upstream operator's Emit coalescing:
  /// move the whole output batch into the buffer (the relay is the end
  /// of this stage's synchronous chain, so it can take ownership), then
  /// flush once — same ordering as the per-element path (which would
  /// have flushed at the batch's last punctuation anyway), one
  /// EnqueueBatch per batch.
  void PushBatch(ElementBatch& batch, int /*port*/) override {
    buf_.reserve(buf_.size() + batch.size());
    bool saw_punct = false;
    for (Element& e : batch) {
      if (e.is_punctuation()) saw_punct = true;
      buf_.push_back(Item{std::move(e), port_, nullptr});
    }
    if (saw_punct || buf_.size() >= cap_) FlushBuffer();
  }

  /// Columnar hand-off: the batch crosses the stage boundary intact (no
  /// materialization) as a single queue item. Appended after any
  /// buffered row items so emission order is preserved, then flushed
  /// immediately — a columnar batch is already the amortization unit.
  void PushColumns(ColumnBatch& batch, int /*port*/) override {
    Item item;
    item.port = port_;
    item.cols = std::make_unique<ColumnBatch>(std::move(batch));
    buf_.push_back(std::move(item));
    FlushBuffer();
  }

 public:

  void FlushBuffer() {
    if (buf_.empty()) return;
    exec_->EnqueueBatch(next_, buf_);
    buf_.clear();
  }

 private:
  ParallelExecutor* exec_;
  size_t next_;
  int port_;
  size_t cap_;
  std::vector<Item> buf_;
};

ParallelExecutor::ParallelExecutor(std::vector<Stage> stages, Operator* sink)
    : stages_(std::move(stages)), sink_(sink) {
  assert(!stages_.empty());
  states_.reserve(stages_.size());
  for (const Stage& s : stages_) {
    auto st = std::make_unique<StageState>();
    st->cfg = s;
    states_.push_back(std::move(st));
  }
  // Wire stage i's output into stage i+1's queue. The relay runs on
  // worker i (it is stage i's downstream), so the only cross-thread
  // hand-off is the queue itself.
  relays_.reserve(stages_.size());
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (i + 1 < stages_.size()) {
      size_t next = i + 1;
      relays_.push_back(std::make_unique<Relay>(
          this, next, stages_[next].in_port, stages_[next].wake_batch));
      stages_[i].op->SetOutput(relays_.back().get());
    } else if (sink_ != nullptr) {
      stages_[i].op->SetOutput(sink_);
    }
  }
}


ParallelExecutor::~ParallelExecutor() {
  if (running_) Stop();
}

void ParallelExecutor::Start() {
  assert(!started_ && "ParallelExecutor is one-shot: Start() once");
  started_ = true;
  running_ = true;
  for (size_t i = 0; i < states_.size(); ++i) {
    states_[i]->worker = std::thread([this, i] { WorkerLoop(i); });
  }
}

bool ParallelExecutor::Arrive(Element e) {
  return Enqueue(0, Item{std::move(e), stages_[0].in_port, nullptr});
}

bool ParallelExecutor::ArriveOn(Element e, int port) {
  return Enqueue(0, Item{std::move(e), port, nullptr});
}

bool ParallelExecutor::Enqueue(size_t stage, Item item) {
  StageState& st = *states_[stage];
  std::unique_lock<std::mutex> lock(st.mu);
  if (stop_ || st.closed) return false;
  const size_t limit = st.cfg.queue_limit;
  // Punctuations bypass the limit: a lost watermark deadlocks windows.
  if (limit != 0 && st.q_rows >= limit && !item.e.is_punctuation()) {
    if (st.cfg.backpressure == Backpressure::kDropNewest) {
      ++st.dropped;
      return false;
    }
    st.not_full.wait(lock, [&] {
      return stop_ || st.closed || st.q_rows < limit;
    });
    // Shutdown refusal, not an overload drop: the caller sees `false`
    // but `dropped` only counts queue-overflow losses.
    if (stop_ || st.closed) return false;
  }
  const bool is_punct = item.e.is_punctuation();
  // Queue-wait stamping is pay-for-what-you-profile: no clock read
  // unless the consuming operator has a profile slot bound.
  if (stages_[stage].op->profile() != nullptr) item.enq_ns = obs::NowNs();
  st.q.push_back(std::move(item));
  st.q_rows += 1;
  ++st.enqueued;
  if (st.q_rows > st.max_depth) st.max_depth = st.q_rows;
  // Batched wakeup: signalling every element lets the consumer preempt
  // the producer one element at a time — on few cores that degenerates
  // into two context switches per element. Wake only once a batch is
  // ready, or immediately for punctuations (watermarks are the latency-
  // critical control path). Sub-batch trickle is covered by the worker's
  // poll timeout, and CloseStage/Stop wake unconditionally.
  // `== wake`, not `>=`: the worker only sleeps once the queue is empty
  // (a partially claimed queue keeps it looping without waiting), so a
  // refilling queue crosses the threshold exactly once per sleep —
  // signalling on every element past it would be a futex call per tuple.
  size_t wake = st.cfg.wake_batch == 0 ? 1 : st.cfg.wake_batch;
  if (limit != 0 && wake > limit) wake = limit;
  if (is_punct || st.q_rows == wake) st.not_empty.notify_one();
  return true;
}

void ParallelExecutor::EnqueueBatch(size_t stage, std::vector<Item>& items) {
  StageState& st = *states_[stage];
  std::unique_lock<std::mutex> lock(st.mu);
  const size_t limit = st.cfg.queue_limit;
  if (stop_ || st.closed) return;
  size_t chunk_rows = 0;
  for (const Item& item : items) chunk_rows += item.Weight();
  if (stages_[stage].op->profile() != nullptr) {
    const uint64_t now = obs::NowNs();  // One clock read per chunk.
    for (Item& item : items) item.enq_ns = now;
  }
  // Fast path: the whole chunk fits (or the queue is unbounded) — bulk
  // move without per-element bookkeeping.
  if (limit == 0 || st.q_rows + chunk_rows <= limit) {
    st.q.insert(st.q.end(), std::make_move_iterator(items.begin()),
                std::make_move_iterator(items.end()));
    st.q_rows += chunk_rows;
    st.enqueued += chunk_rows;
    if (st.q_rows > st.max_depth) st.max_depth = st.q_rows;
    st.not_empty.notify_one();
    return;
  }
  for (Item& item : items) {
    if (stop_ || st.closed) return;  // Shutdown: remainder refused.
    const bool bypass = item.cols == nullptr && item.e.is_punctuation();
    if (limit != 0 && st.q_rows >= limit && !bypass) {
      if (st.cfg.backpressure == Backpressure::kDropNewest) {
        if (item.cols != nullptr) {
          // A columnar item drops only its data rows; its punctuation
          // slots are re-admitted as plain elements (puncts are never
          // dropped — same contract as the row path).
          st.dropped += item.cols->ActiveRows();
          for (ColumnBatch::PunctSlot& ps : item.cols->puncts) {
            st.q.push_back(
                Item{Element(std::move(ps.punct)), item.port, nullptr});
            st.q_rows += 1;
            ++st.enqueued;
          }
        } else {
          ++st.dropped;
        }
        continue;
      }
      // The consumer must drain us before we can continue: make sure it
      // is awake before sleeping on not_full.
      st.not_empty.notify_one();
      st.not_full.wait(lock, [&] {
        return stop_ || st.closed || st.q_rows < limit;
      });
      if (stop_ || st.closed) return;
    }
    // A columnar item lands whole once below the limit (it may
    // transiently overshoot by its row count, like punctuations do).
    const size_t w = item.Weight();
    st.q.push_back(std::move(item));
    st.q_rows += w;
    st.enqueued += w;
  }
  if (st.q_rows > st.max_depth) st.max_depth = st.q_rows;
  st.not_empty.notify_one();  // Once per chunk, not per element.
}

void ParallelExecutor::CloseStage(size_t stage) {
  StageState& st = *states_[stage];
  {
    std::lock_guard<std::mutex> lock(st.mu);
    st.closed = true;
  }
  st.not_empty.notify_all();
  st.not_full.notify_all();
}

void ParallelExecutor::WorkerLoop(size_t stage) {
  StageState& st = *states_[stage];
  Operator* op = st.cfg.op;
  const size_t max_batch = st.cfg.max_batch == 0 ? 1 : st.cfg.max_batch;
  const bool columnar = st.cfg.columnar;
  std::deque<Item> batch;
  ElementBatch eb;
  ColumnBatch cb;
  if (max_batch > 1) eb.reserve(max_batch);
  for (;;) {
    batch.clear();
    bool flush = false;
    size_t claimed = 0;
    {
      std::unique_lock<std::mutex> lock(st.mu);
      // wait_for, not wait: producers suppress wakeups until a full
      // batch accumulates, so the poll timeout is what bounds the
      // latency of a sub-batch trickle.
      st.not_empty.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return stop_ || st.closed || !st.q.empty();
      });
      if (stop_) return;
      if (!st.q.empty()) {
        // Claim at most max_batch elements (columnar items weigh their
        // row counts) per lock acquisition — max_batch is the one
        // hand-off granularity knob, so =1 really is the classic
        // element-at-a-time executor (a lock round-trip and a producer
        // wakeup per element) that the batched path is measured against.
        if (st.q_rows <= max_batch) {
          batch.swap(st.q);
          claimed = st.q_rows;
          st.q_rows = 0;
        } else {
          while (!st.q.empty() && claimed < max_batch) {
            claimed += st.q.front().Weight();
            batch.push_back(std::move(st.q.front()));
            st.q.pop_front();
          }
          st.q_rows -= claimed;  // Weights are stable while queued.
        }
      } else if (st.closed) {
        // closed && empty: our input is finished.
        flush = true;
      } else {
        continue;  // Poll timeout with nothing to do.
      }
    }
    if (flush) break;
    // A batch was claimed: wake every producer blocked on the bound,
    // then process outside the lock.
    st.not_full.notify_all();
    if (obs::OpMetrics* m = op->metrics()) {
      m->IncBatches();
      m->UpdateQueueDepth(claimed);
    }
    if (obs::OpProfile* p = op->profile()) {
      // One clock read per claim: attribute how long the claimed items
      // sat in this stage's queue (producer-stamped at enqueue).
      const uint64_t now = obs::NowNs();
      uint64_t wait = 0, stamped = 0;
      for (const Item& item : batch) {
        if (item.enq_ns != 0 && now > item.enq_ns) {
          wait += now - item.enq_ns;
          ++stamped;
        }
      }
      if (stamped != 0) p->AddQueueWait(wait, stamped);
    }
    auto t0 = std::chrono::steady_clock::now();
    uint64_t deliveries = 0;
    if (max_batch <= 1) {
      // Exact pre-batching path: one virtual Push per element (columnar
      // items arriving from an upstream stage are still delivered whole
      // — slicing them back into rows would defeat the hand-off).
      for (Item& item : batch) {
        if (item.cols != nullptr) {
          op->ProcessColumns(*item.cols, item.port);
        } else {
          op->Process(item.e, item.port);
        }
        if (stop_) break;
      }
    } else {
      // Slice the claimed queue into same-port runs of at most
      // max_batch elements and deliver each as one ProcessBatch call
      // (or, on a columnar stage, one row→column conversion and one
      // ProcessColumns call). Columnar items already in the queue are
      // delivered whole, in order. Elements are moved out of the
      // claimed vector; order, including punctuations, is untouched.
      size_t i = 0;
      while (i < batch.size() && !stop_) {
        if (batch[i].cols != nullptr) {
          op->ProcessColumns(*batch[i].cols, batch[i].port);
          ++i;
          ++deliveries;
          continue;
        }
        const int port = batch[i].port;
        size_t end = batch.size() - i > max_batch ? i + max_batch
                                                  : batch.size();
        eb.clear();
        while (i < end && batch[i].port == port &&
               batch[i].cols == nullptr) {
          eb.push_back(std::move(batch[i].e));
          ++i;
        }
        if (columnar && op->SupportsColumns(port) &&
            ColumnBatch::FromRows(eb, &cb)) {
          op->ProcessColumns(cb, port);
        } else {
          op->ProcessBatch(eb, port);
        }
        ++deliveries;
      }
    }
    // Don't sit on buffered emissions while waiting for the next batch.
    if (stage < relays_.size()) relays_[stage]->FlushBuffer();
    auto t1 = std::chrono::steady_clock::now();
    st.busy_ns.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count(),
        std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(st.mu);
      st.processed += claimed;
      st.batches += deliveries;
    }
    if (stop_) return;
  }
  // Flush cascade: close-out emissions flow through the relay into the
  // next stage's queue before we mark it closed.
  op->Flush();
  if (stage + 1 < states_.size()) CloseStage(stage + 1);
}

void ParallelExecutor::Drain() {
  if (!running_) return;
  CloseStage(0);
  for (auto& st : states_) {
    if (st->worker.joinable()) st->worker.join();
  }
  running_ = false;
}

void ParallelExecutor::Stop() {
  if (!running_) return;
  stop_ = true;
  for (size_t i = 0; i < states_.size(); ++i) {
    StageState& st = *states_[i];
    std::lock_guard<std::mutex> lock(st.mu);
    st.not_empty.notify_all();
    st.not_full.notify_all();
  }
  for (auto& st : states_) {
    if (st->worker.joinable()) st->worker.join();
  }
  running_ = false;
}

sched::StageStats ParallelExecutor::stage_stats(size_t i) const {
  const StageState& st = *states_[i];
  sched::StageStats out;
  std::lock_guard<std::mutex> lock(st.mu);
  out.enqueued = st.enqueued;
  out.processed = st.processed;
  out.batches = st.batches;
  out.dropped = st.dropped;
  out.queue_depth = st.q_rows;
  out.max_queue_depth = st.max_depth;
  out.busy_time =
      static_cast<double>(st.busy_ns.load(std::memory_order_relaxed)) * 1e-9;
  return out;
}

void ParallelExecutor::CollectStats(obs::SnapshotBuilder& builder,
                                    const obs::LabelSet& base_labels) const {
  for (size_t i = 0; i < states_.size(); ++i) {
    sched::StageStats s = stage_stats(i);
    obs::LabelSet labels = base_labels;
    labels.emplace_back("stage", std::to_string(i));
    labels.emplace_back("op", stages_[i].op->name());
    // Mirror the queue high-water into the operator's own metrics slot
    // so per-op views show queue pressure without asking the executor.
    if (obs::OpMetrics* m = stages_[i].op->metrics()) {
      m->UpdateQueueDepth(s.max_queue_depth);
    }
    sched::PublishStageStats(builder, labels, s);
  }
}

uint64_t ParallelExecutor::dropped() const {
  uint64_t n = 0;
  for (size_t i = 0; i < states_.size(); ++i) n += stage_stats(i).dropped;
  return n;
}

size_t ParallelExecutor::QueuedElements() const {
  size_t n = 0;
  for (const auto& st : states_) {
    std::lock_guard<std::mutex> lock(st->mu);
    n += st->q_rows;
  }
  return n;
}

}  // namespace sqp
