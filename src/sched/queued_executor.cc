#include "sched/queued_executor.h"

namespace sqp {

class QueuedExecutor::Relay : public Operator {
 public:
  Relay(QueuedExecutor* exec, size_t next)
      : Operator("relay"), exec_(exec), next_(next) {}

  void Push(const Element& e, int /*port*/ = 0) override {
    CountIn(e);
    exec_->Admit(next_, e);
  }

 protected:
  /// A batched flush owns its elements (the producer is done with
  /// them), so move each into its queue entry — no per-element
  /// shared_ptr refcount round-trip at the stage boundary.
  void PushBatch(ElementBatch& batch, int /*port*/) override {
    AssertSingleCaller();
    uint64_t tuples = 0;
    uint64_t puncts = 0;
    for (Element& e : batch) {
      if (e.is_punctuation()) {
        ++puncts;
      } else {
        ++tuples;
      }
      exec_->Admit(next_, std::move(e));
    }
    stats_.tuples_in += tuples;
    stats_.puncts_in += puncts;
    if (metrics() != nullptr) metrics()->CountInBulk(tuples, puncts);
  }

  /// Columnar hand-off: the batch becomes one queue entry downstream —
  /// no materialization at the stage boundary.
  void PushColumns(ColumnBatch& batch, int /*port*/) override {
    CountInColumns(batch);
    exec_->AdmitColumns(next_, std::move(batch));
  }

 public:
  bool SupportsColumns(int /*port*/ = 0) const override { return true; }

 private:
  QueuedExecutor* exec_;
  size_t next_;
};

QueuedExecutor::QueuedExecutor(std::vector<Stage> stages, Operator* sink,
                               std::unique_ptr<SchedulingPolicy> policy)
    : stages_(std::move(stages)),
      queues_(stages_.size()),
      q_rows_(stages_.size(), 0),
      stage_stats_(stages_.size()),
      sink_(sink),
      policy_(std::move(policy)),
      progress_(stages_.size(), 0.0) {
  // Wire each operator's output: stage i -> queue i+1 via a batch-aware
  // relay; the last stage goes straight to the user sink.
  relays_.reserve(stages_.size());
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (i + 1 < stages_.size()) {
      relays_.push_back(std::make_unique<Relay>(this, i + 1));
      stages_[i].op->SetOutput(relays_.back().get());
    } else {
      stages_[i].op->SetOutput(sink_);
    }
  }
}

QueuedExecutor::~QueuedExecutor() = default;

bool QueuedExecutor::Admit(size_t stage, Element e) {
  const Stage& s = stages_[stage];
  sched::StageStats& stats = stage_stats_[stage];
  // Punctuations bypass the bound: a dropped watermark stalls every
  // window downstream.
  if (s.queue_limit != 0 && q_rows_[stage] >= s.queue_limit &&
      !e.is_punctuation()) {
    ++stats.dropped;
    ++dropped_;
    return false;
  }
  Entry entry{std::move(e), seq_++, nullptr};
  // Queue-wait stamping is pay-for-what-you-profile: no clock read
  // unless the consuming operator has a profile slot bound.
  if (s.op->profile() != nullptr) entry.enq_ns = obs::NowNs();
  queues_[stage].push_back(std::move(entry));
  q_rows_[stage] += 1;
  ++stats.enqueued;
  stats.queue_depth = q_rows_[stage];
  if (q_rows_[stage] > stats.max_queue_depth) {
    stats.max_queue_depth = q_rows_[stage];
  }
  return true;
}

bool QueuedExecutor::AdmitColumns(size_t stage, ColumnBatch&& batch) {
  const Stage& s = stages_[stage];
  sched::StageStats& stats = stage_stats_[stage];
  if (s.queue_limit != 0 && q_rows_[stage] >= s.queue_limit) {
    // Bounded queue full: the data rows drop (counted, like the row
    // path's per-element drops); punctuation slots are never dropped —
    // they re-admit as plain elements, bypassing the bound.
    const size_t lost = batch.ActiveRows();
    stats.dropped += lost;
    dropped_ += lost;
    for (ColumnBatch::PunctSlot& ps : batch.puncts) {
      Admit(stage, Element(std::move(ps.punct)));
    }
    return false;
  }
  Entry entry;
  entry.seq = seq_++;
  entry.cols = std::make_unique<ColumnBatch>(std::move(batch));
  if (s.op->profile() != nullptr) entry.enq_ns = obs::NowNs();
  const size_t w = entry.Weight();
  queues_[stage].push_back(std::move(entry));
  q_rows_[stage] += w;
  stats.enqueued += w;
  stats.queue_depth = q_rows_[stage];
  if (q_rows_[stage] > stats.max_queue_depth) {
    stats.max_queue_depth = q_rows_[stage];
  }
  return true;
}

bool QueuedExecutor::Arrive(Element e) { return Admit(0, std::move(e)); }

std::vector<OpView> QueuedExecutor::MakeViews() const {
  std::vector<OpView> views(stages_.size());
  for (size_t i = 0; i < stages_.size(); ++i) {
    views[i].queue_len = q_rows_[i];
    views[i].selectivity = stages_[i].selectivity_hint;
    views[i].cost = stages_[i].cost;
    if (!queues_[i].empty()) {
      const Entry& front = queues_[i].front();
      views[i].head_seq = front.seq;
      // Real size of the waiting element, so size-aware policies
      // (Greedy) see shrinking tuples the way the [BBDM03] model does.
      // A columnar head reports its whole batch footprint.
      views[i].head_size = static_cast<double>(
          front.cols != nullptr ? front.cols->MemoryBytes()
                                : front.e.MemoryBytes());
    }
  }
  return views;
}

void QueuedExecutor::DeliverBatch(size_t stage, size_t n) {
  std::deque<Entry>& q = queues_[stage];
  sched::StageStats& stats = stage_stats_[stage];
  obs::OpProfile* prof = stages_[stage].op->profile();
  const uint64_t now = prof != nullptr ? obs::NowNs() : 0;
  if (n == 1) {
    Entry entry = std::move(q.front());
    q.pop_front();
    ++stats.processed;
    q_rows_[stage] -= 1;
    stats.queue_depth = q_rows_[stage];
    if (prof != nullptr && entry.enq_ns != 0 && now > entry.enq_ns) {
      prof->AddQueueWait(now - entry.enq_ns, 1);
    }
    stages_[stage].op->Process(entry.e, 0);
    return;
  }
  scratch_.clear();
  scratch_.reserve(n);
  uint64_t wait = 0, stamped = 0;
  for (size_t i = 0; i < n; ++i) {
    Entry& front = q.front();
    if (prof != nullptr && front.enq_ns != 0 && now > front.enq_ns) {
      wait += now - front.enq_ns;
      ++stamped;
    }
    scratch_.push_back(std::move(front.e));
    q.pop_front();
  }
  if (stamped != 0) prof->AddQueueWait(wait, stamped);
  stats.processed += n;
  ++stats.batches;
  q_rows_[stage] -= n;
  stats.queue_depth = q_rows_[stage];
  Operator* op = stages_[stage].op;
  // Columnar stage: convert the train once and deliver it column-at-a-
  // time; conversion failure (ragged or mixed-type rows) falls back to
  // the row batch unchanged.
  if (stages_[stage].columnar && op->SupportsColumns(0) &&
      ColumnBatch::FromRows(scratch_, &col_scratch_)) {
    op->ProcessColumns(col_scratch_, 0);
    return;
  }
  op->ProcessBatch(scratch_, 0);
}

void QueuedExecutor::DeliverColumns(size_t stage) {
  std::deque<Entry>& q = queues_[stage];
  sched::StageStats& stats = stage_stats_[stage];
  Entry entry = std::move(q.front());
  q.pop_front();
  const size_t w = entry.Weight();
  stats.processed += w;
  ++stats.batches;
  q_rows_[stage] -= w;  // Weights are stable while queued.
  stats.queue_depth = q_rows_[stage];
  if (obs::OpProfile* prof = stages_[stage].op->profile()) {
    const uint64_t now = obs::NowNs();
    if (entry.enq_ns != 0 && now > entry.enq_ns) {
      prof->AddQueueWait(now - entry.enq_ns, 1);
    }
  }
  stages_[stage].op->ProcessColumns(*entry.cols, 0);
}

void QueuedExecutor::CollectStats(obs::SnapshotBuilder& builder,
                                  const obs::LabelSet& base_labels) const {
  for (size_t i = 0; i < stages_.size(); ++i) {
    obs::LabelSet labels = base_labels;
    labels.emplace_back("stage", std::to_string(i));
    labels.emplace_back("op", stages_[i].op->name());
    if (obs::OpMetrics* m = stages_[i].op->metrics()) {
      m->UpdateQueueDepth(stage_stats_[i].max_queue_depth);
    }
    sched::PublishStageStats(builder, labels, stage_stats_[i]);
  }
}

void QueuedExecutor::Tick(double capacity) {
  double budget = capacity;
  while (budget > 1e-12) {
    int pick = policy_->Pick(MakeViews());
    if (pick < 0) break;
    size_t i = static_cast<size_t>(pick);
    const std::deque<Entry>& q = queues_[i];
    // A columnar head is one queue entry spanning many elements: it is
    // delivered whole and charged cost-per-element times its weight, so
    // total scheduled work per tick matches the row path exactly.
    const bool col_head = !q.empty() && q.front().cols != nullptr;
    const double head_cost =
        col_head ? stages_[i].cost * static_cast<double>(q.front().Weight())
                 : stages_[i].cost;
    double needed = head_cost - progress_[i];
    if (needed > budget) {
      progress_[i] += budget;
      stage_stats_[i].busy_time += budget;
      break;
    }
    budget -= needed;
    progress_[i] = 0.0;
    stage_stats_[i].busy_time += needed;
    if (col_head) {
      DeliverColumns(i);
      continue;
    }
    // Batched delivery: if the stage allows it and the remaining budget
    // covers further whole elements, deliver them in the same pick —
    // each still charged full cost, so total work per tick is unchanged;
    // only the delivery granularity grows. The train stops at the first
    // columnar entry (delivered whole on a later pick).
    size_t extra = 0;
    if (stages_[i].max_batch > 1 && q.size() > 1) {
      size_t run = 0;
      while (1 + run < q.size() && run < stages_[i].max_batch - 1 &&
             q[1 + run].cols == nullptr) {
        ++run;
      }
      extra = run;
      if (stages_[i].cost > 1e-12) {
        size_t affordable = static_cast<size_t>(budget / stages_[i].cost);
        if (extra > affordable) extra = affordable;
      }
      double charged = static_cast<double>(extra) * stages_[i].cost;
      budget -= charged;
      stage_stats_[i].busy_time += charged;
    }
    DeliverBatch(i, 1 + extra);
  }
}

void QueuedExecutor::Drain() {
  auto drain_queues = [&] {
    bool any = true;
    while (any) {
      any = false;
      for (size_t i = 0; i < stages_.size(); ++i) {
        const size_t chunk =
            stages_[i].max_batch > 0 ? stages_[i].max_batch : 1;
        while (!queues_[i].empty()) {
          if (queues_[i].front().cols != nullptr) {
            DeliverColumns(i);
            any = true;
            continue;
          }
          // Row train up to `chunk`, stopping at a columnar entry.
          size_t run = 0;
          while (run < chunk && run < queues_[i].size() &&
                 queues_[i][run].cols == nullptr) {
            ++run;
          }
          DeliverBatch(i, run);
          any = true;
        }
      }
    }
  };
  drain_queues();
  // Flush stage by stage; a flush may emit buffered results into the
  // next queue (e.g. group-by close-out), so re-drain after each.
  for (size_t i = 0; i < stages_.size(); ++i) {
    stages_[i].op->Flush();
    drain_queues();
  }
}

size_t QueuedExecutor::QueuedElements() const {
  size_t n = 0;
  for (size_t rows : q_rows_) n += rows;
  return n;
}

size_t QueuedExecutor::QueuedBytes() const {
  size_t bytes = 0;
  for (const auto& q : queues_) {
    for (const Entry& e : q) {
      bytes += e.cols != nullptr ? e.cols->MemoryBytes() : e.e.MemoryBytes();
    }
  }
  return bytes;
}

}  // namespace sqp
