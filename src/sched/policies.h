#ifndef SQP_SCHED_POLICIES_H_
#define SQP_SCHED_POLICIES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sqp {

/// What a scheduling policy sees about one operator of a chain at a
/// scheduling decision point.
struct OpView {
  /// Tuples waiting in the operator's input queue.
  size_t queue_len = 0;
  /// Arrival sequence number of the queue head (global order); used by
  /// FIFO and as a tie-breaker. UINT64_MAX when empty.
  uint64_t head_seq = UINT64_MAX;
  /// Size (in memory units) of the queue-head tuple.
  double head_size = 0.0;
  /// Operator selectivity (output size per input size).
  double selectivity = 1.0;
  /// Time units to process one tuple.
  double cost = 1.0;
};

/// Picks which operator runs next. Returns -1 when all queues are empty.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  virtual int Pick(const std::vector<OpView>& ops) = 0;

  virtual std::string name() const = 0;
};

/// FIFO: tuples processed in arrival order — run the operator holding the
/// globally oldest tuple (slide 43's baseline).
std::unique_ptr<SchedulingPolicy> MakeFifoPolicy();

/// Round-robin over non-empty queues.
std::unique_ptr<SchedulingPolicy> MakeRoundRobinPolicy();

/// Greedy: run the operator with the largest immediate memory release
/// rate, head_size * (1 - selectivity) / cost (slide 43's "Greedy").
std::unique_ptr<SchedulingPolicy> MakeGreedyPolicy();

/// Chain [BBDM03]: operators are prioritized by the slope of the segment
/// of the lower envelope of the chain's progress chart that covers them;
/// provably near-optimal for total queue memory. `costs`/`sels` describe
/// the full chain (needed to precompute the envelope).
std::unique_ptr<SchedulingPolicy> MakeChainPolicy(
    const std::vector<double>& costs, const std::vector<double>& sels);

}  // namespace sqp

#endif  // SQP_SCHED_POLICIES_H_
