#include "sched/sim.h"

#include <algorithm>

namespace sqp {

namespace {

struct SimTuple {
  double size;
  uint64_t seq;
};

}  // namespace

ChainSimResult RunChainSim(const ChainSimConfig& config,
                           ArrivalProcess& arrivals,
                           SchedulingPolicy& policy) {
  size_t n = config.ops.size();
  std::vector<std::deque<SimTuple>> queues(n);
  // Partial progress (work units already spent) on each queue's head.
  std::vector<double> progress(n, 0.0);
  uint64_t seq = 0;

  ChainSimResult result;
  result.memory_at_tick.reserve(static_cast<size_t>(config.ticks));

  auto total_memory = [&]() {
    double m = 0.0;
    for (const auto& q : queues) {
      for (const SimTuple& t : q) m += t.size;
    }
    return m;
  };

  auto make_views = [&]() {
    std::vector<OpView> views(n);
    for (size_t i = 0; i < n; ++i) {
      views[i].queue_len = queues[i].size();
      views[i].selectivity = config.ops[i].selectivity;
      views[i].cost = config.ops[i].cost;
      if (!queues[i].empty()) {
        views[i].head_seq = queues[i].front().seq;
        views[i].head_size = queues[i].front().size;
      }
    }
    return views;
  };

  for (int64_t t = 0; t < config.ticks; ++t) {
    // Arrivals enter the head queue.
    uint64_t arriving = arrivals.ArrivalsAt(t);
    for (uint64_t a = 0; a < arriving; ++a) {
      queues[0].push_back(SimTuple{1.0, seq++});
    }

    // Sample memory after arrivals, before this tick's processing —
    // the convention of the slide-43 table.
    double mem = total_memory();
    result.memory_at_tick.push_back(mem);
    result.peak_memory = std::max(result.peak_memory, mem);
    result.avg_memory += mem;

    // Spend this tick's capacity.
    double budget = config.capacity;
    while (budget > 1e-12) {
      int pick = policy.Pick(make_views());
      if (pick < 0) break;
      size_t i = static_cast<size_t>(pick);
      SimTuple& head = queues[i].front();
      double needed = config.ops[i].cost - progress[i];
      if (needed > budget) {
        progress[i] += budget;
        budget = 0.0;
        break;
      }
      budget -= needed;
      progress[i] = 0.0;
      // Tuple completes operator i.
      SimTuple done = head;
      queues[i].pop_front();
      done.size *= config.ops[i].selectivity;
      if (i + 1 < n && done.size > 0.0) {
        queues[i + 1].push_back(done);
      } else {
        ++result.completed;
      }
    }
  }

  if (!result.memory_at_tick.empty()) {
    result.avg_memory /= static_cast<double>(result.memory_at_tick.size());
  }
  return result;
}

}  // namespace sqp
