#ifndef SQP_SCHED_QUEUED_EXECUTOR_H_
#define SQP_SCHED_QUEUED_EXECUTOR_H_

#include <deque>
#include <memory>
#include <vector>

#include "exec/operator.h"
#include "sched/policies.h"
#include "sched/stage_stats.h"

namespace sqp {

/// Executes a linear chain of real operators with an explicit queue in
/// front of each, under a pluggable scheduling policy — the bridge
/// between the analytic simulator and the physical operators: same
/// policies, real tuples.
///
/// Each operator is charged `cost` work units per consumed element; one
/// `Tick()` grants `capacity` units. Operator outputs are routed into the
/// next stage's queue (the last stage feeds the sink directly).
class QueuedExecutor {
 public:
  struct Stage {
    Operator* op = nullptr;
    double cost = 1.0;
    /// A-priori selectivity estimate handed to the policy (the policy
    /// never sees real output counts mid-run, mirroring [BBDM03]).
    double selectivity_hint = 1.0;
    /// Bound on the stage's input queue in elements (0 = unbounded).
    size_t queue_limit = 0;
    /// Delivery granularity: when the policy picks this stage and the
    /// budget covers more than one element, up to this many queued
    /// elements are handed to the operator as one ProcessBatch call
    /// (each still charged `cost`). 1 = per-element delivery, the
    /// default, which keeps the scheduling simulation exact: batching
    /// trades policy granularity for lower per-element overhead.
    size_t max_batch = 1;
    /// Columnar delivery: a batched train (max_batch > 1) is converted
    /// to a ColumnBatch (ColumnBatch::FromRows) and handed to the
    /// operator as one ProcessColumns call, falling back to
    /// ProcessBatch when conversion fails. Columnar batches emitted by
    /// an upstream stage cross this stage's queue intact regardless of
    /// the flag. Meaningful only when the operator reports
    /// SupportsColumns(0).
    bool columnar = false;
  };

  QueuedExecutor(std::vector<Stage> stages, Operator* sink,
                 std::unique_ptr<SchedulingPolicy> policy);
  ~QueuedExecutor();

  /// Enqueues an arriving element into the first stage's queue. Returns
  /// false if the element was dropped (queue full).
  bool Arrive(Element e);

  /// Runs one time unit of processing.
  void Tick(double capacity = 1.0);

  /// Drains every queue (ignoring costs) and flushes the chain.
  void Drain();

  size_t QueuedElements() const;
  size_t QueuedBytes() const;
  /// Total drops across all stages. Bounded queues drop at *every*
  /// stage boundary (an overflowing relay hand-off counts against the
  /// receiving stage), not just at Arrive.
  uint64_t dropped() const { return dropped_; }
  /// Drops charged to one stage's input queue.
  uint64_t dropped(size_t stage) const { return stage_stats_[stage].dropped; }
  /// Per-stage counters, comparable with ParallelExecutor's. `busy_time`
  /// accumulates scheduled cost units (the simulator's clock), not wall
  /// time.
  const sched::StageStats& stage_stats(size_t stage) const {
    return stage_stats_[stage];
  }
  /// Publishes every stage's counters (sqp_stage_*) under
  /// {base_labels..., stage=i, op=name} — the same reporting path as
  /// ParallelExecutor::CollectStats, so serial and threaded runs land in
  /// one registry shape.
  void CollectStats(obs::SnapshotBuilder& builder,
                    const obs::LabelSet& base_labels) const;

 private:
  /// One queue slot: either a single row element (`cols == nullptr`) or
  /// a whole columnar batch crossing the stage boundary without
  /// materialization. Queue accounting (limits, depths, the scheduler's
  /// queue_len view, enqueued/processed/dropped) is in *elements*: a
  /// columnar entry weighs its live rows plus punctuation slots.
  struct Entry {
    Element e;
    uint64_t seq = 0;
    std::unique_ptr<ColumnBatch> cols;
    /// Enqueue timestamp for queue-wait attribution; stamped only when
    /// the receiving stage's operator has a profile bound (0 = unstamped
    /// — profiling disabled, no clock read on the hand-off path).
    uint64_t enq_ns = 0;

    /// Element count this entry charges against queue accounting (min 1
    /// so even a fully-filtered columnar batch holds a queue slot).
    size_t Weight() const {
      if (cols == nullptr) return 1;
      size_t w = cols->ActiveRows() + cols->puncts.size();
      return w == 0 ? 1 : w;
    }
  };

  /// Routes a stage's output into the next stage's queue. Batch-aware:
  /// a batched flush moves its elements into queue entries instead of
  /// copying them one hand-off at a time, so delivery batches cross
  /// stage boundaries without per-element refcount traffic.
  class Relay;

  std::vector<OpView> MakeViews() const;
  /// Pops the first `n` *row* entries of `stage`'s queue into its
  /// operator — one Process call when n == 1, one ProcessBatch (or, on
  /// a columnar stage, one ProcessColumns) call otherwise. Callers
  /// guarantee the first n entries are row entries.
  void DeliverBatch(size_t stage, size_t n);
  /// Pops the front (columnar) entry and delivers it whole as one
  /// ProcessColumns call.
  void DeliverColumns(size_t stage);

  /// Appends to `stage`'s queue, honoring its bound (punctuations are
  /// never dropped). Returns false and counts the drop on overflow.
  bool Admit(size_t stage, Element e);
  /// Columnar hand-off from a relay: the batch crosses the boundary
  /// intact as one entry. On overflow the data rows drop (counted) and
  /// the contained punctuations re-admit as plain elements.
  bool AdmitColumns(size_t stage, ColumnBatch&& batch);

  std::vector<Stage> stages_;
  std::vector<std::deque<Entry>> queues_;
  /// Sum of entry weights per queue (elements, not slots).
  std::vector<size_t> q_rows_;
  /// Reused across DeliverBatch calls: batched delivery must not pay a
  /// heap allocation per train.
  ElementBatch scratch_;
  ColumnBatch col_scratch_;  // row→column conversion scratch
  std::vector<sched::StageStats> stage_stats_;
  // Relay sinks routing each stage's output into the next queue.
  std::vector<std::unique_ptr<Operator>> relays_;
  Operator* sink_;
  std::unique_ptr<SchedulingPolicy> policy_;
  std::vector<double> progress_;
  uint64_t seq_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace sqp

#endif  // SQP_SCHED_QUEUED_EXECUTOR_H_
