#ifndef SQP_SCHED_SIM_H_
#define SQP_SCHED_SIM_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "sched/policies.h"
#include "stream/arrival.h"

namespace sqp {

/// Analytic model of one operator in a chain (the [BBDM03] setting):
/// processing one tuple takes `cost` time units and scales the tuple's
/// memory footprint by `selectivity` (0 = the tuple is consumed).
struct SimOperator {
  double cost = 1.0;
  double selectivity = 1.0;
};

struct ChainSimConfig {
  std::vector<SimOperator> ops;
  /// Simulation horizon in time units.
  int64_t ticks = 100;
  /// Processing capacity per tick (1.0 = one unit of work).
  double capacity = 1.0;
};

struct ChainSimResult {
  /// Total queued memory measured at each integer time (after arrivals,
  /// before that tick's processing) — the slide-43 table rows.
  std::vector<double> memory_at_tick;
  double peak_memory = 0.0;
  double avg_memory = 0.0;
  /// Tuples fully processed through the chain.
  uint64_t completed = 0;
};

/// Runs the discrete-time chain simulation: at each tick, arrivals enter
/// queue 0, then the policy repeatedly picks an operator until the tick's
/// capacity is exhausted. Deterministic given the arrival process.
ChainSimResult RunChainSim(const ChainSimConfig& config,
                           ArrivalProcess& arrivals,
                           SchedulingPolicy& policy);

}  // namespace sqp

#endif  // SQP_SCHED_SIM_H_
