#ifndef SQP_SCHED_STAGE_STATS_H_
#define SQP_SCHED_STAGE_STATS_H_

#include <cstdint>
#include <string>

namespace sqp {
namespace sched {

/// Per-stage observability counters shared by the serial QueuedExecutor
/// and the threaded ParallelExecutor, so the two report comparably and
/// benchmarks/engines can watch throughput and loss per stage instead of
/// only a global drop counter.
struct StageStats {
  /// Elements accepted into the stage's input queue.
  uint64_t enqueued = 0;
  /// Elements popped from the queue and pushed into the operator.
  uint64_t processed = 0;
  /// Elements lost at this stage's queue (bounded queue overflow).
  uint64_t dropped = 0;
  /// High-water mark of the stage's input queue, in elements.
  uint64_t max_queue_depth = 0;
  /// Time the stage's operator spent processing. Wall-clock seconds for
  /// ParallelExecutor; scheduled cost units for QueuedExecutor (its
  /// clock is the simulated tick budget, not real time).
  double busy_time = 0.0;

  /// Elements still waiting (accepted but not yet processed).
  uint64_t Backlog() const { return enqueued - processed; }

  std::string ToString() const;
};

}  // namespace sched
}  // namespace sqp

#endif  // SQP_SCHED_STAGE_STATS_H_
