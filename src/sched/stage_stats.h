#ifndef SQP_SCHED_STAGE_STATS_H_
#define SQP_SCHED_STAGE_STATS_H_

#include <cstdint>
#include <string>

#include "obs/snapshot.h"

namespace sqp {
namespace sched {

/// Per-stage observability counters shared by the serial QueuedExecutor
/// and the threaded ParallelExecutor, so the two report comparably and
/// benchmarks/engines can watch throughput and loss per stage instead of
/// only a global drop counter.
struct StageStats {
  /// Elements accepted into the stage's input queue.
  uint64_t enqueued = 0;
  /// Elements popped from the queue and pushed into the operator.
  uint64_t processed = 0;
  /// ProcessBatch deliveries into the stage's operator. 0 on pure
  /// per-element paths (max_batch <= 1); processed/batches is the
  /// realized batch size otherwise.
  uint64_t batches = 0;
  /// Elements lost at this stage's queue (bounded queue overflow).
  uint64_t dropped = 0;
  /// Current occupancy of the stage's input queue at snapshot time, in
  /// elements — the instantaneous signal monitors and shedders act on
  /// (max_queue_depth only ratchets up and can't show recovery).
  uint64_t queue_depth = 0;
  /// High-water mark of the stage's input queue, in elements.
  uint64_t max_queue_depth = 0;
  /// Time the stage's operator spent processing. Wall-clock seconds for
  /// ParallelExecutor; scheduled cost units for QueuedExecutor (its
  /// clock is the simulated tick budget, not real time).
  double busy_time = 0.0;

  /// Elements still waiting (accepted but not yet processed). The two
  /// fields are snapshotted independently while workers run, so a
  /// transiently stale `enqueued` may read below `processed`; clamp
  /// instead of wrapping to a huge unsigned backlog.
  uint64_t Backlog() const {
    return processed > enqueued ? 0 : enqueued - processed;
  }

  std::string ToString() const;
};

/// The one description of StageStats' fields, shared by ToString and the
/// obs snapshot bridge so the serial and threaded executors render
/// identically everywhere. `fn(name, value, is_counter)` is called once
/// per field (is_counter=false marks point-in-time gauges).
template <typename Fn>
void ForEachStageStatField(const StageStats& s, Fn&& fn) {
  fn("enqueued", static_cast<double>(s.enqueued), true);
  fn("processed", static_cast<double>(s.processed), true);
  fn("batches", static_cast<double>(s.batches), true);
  fn("dropped", static_cast<double>(s.dropped), true);
  fn("backlog", static_cast<double>(s.Backlog()), false);
  fn("queue_depth", static_cast<double>(s.queue_depth), false);
  fn("max_queue_depth", static_cast<double>(s.max_queue_depth), false);
  fn("busy_time", s.busy_time, true);
}

/// Publishes one stage's counters as sqp_stage_<field> samples under
/// `labels` — the single reporting path both executors use to reach a
/// MetricsRegistry (see ParallelExecutor/QueuedExecutor::CollectStats).
void PublishStageStats(obs::SnapshotBuilder& builder,
                       const obs::LabelSet& labels, const StageStats& s);

}  // namespace sched
}  // namespace sqp

#endif  // SQP_SCHED_STAGE_STATS_H_
