#include "sched/policies.h"

#include <cassert>

namespace sqp {

namespace {

class FifoPolicy : public SchedulingPolicy {
 public:
  int Pick(const std::vector<OpView>& ops) override {
    int best = -1;
    uint64_t best_seq = UINT64_MAX;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].queue_len > 0 && ops[i].head_seq < best_seq) {
        best_seq = ops[i].head_seq;
        best = static_cast<int>(i);
      }
    }
    return best;
  }
  std::string name() const override { return "fifo"; }
};

class RoundRobinPolicy : public SchedulingPolicy {
 public:
  int Pick(const std::vector<OpView>& ops) override {
    if (ops.empty()) return -1;
    for (size_t k = 0; k < ops.size(); ++k) {
      size_t i = (next_ + k) % ops.size();
      if (ops[i].queue_len > 0) {
        next_ = i + 1;
        return static_cast<int>(i);
      }
    }
    return -1;
  }
  std::string name() const override { return "round-robin"; }

 private:
  size_t next_ = 0;
};

class GreedyPolicy : public SchedulingPolicy {
 public:
  int Pick(const std::vector<OpView>& ops) override {
    int best = -1;
    double best_rate = -1.0;
    uint64_t best_seq = UINT64_MAX;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].queue_len == 0) continue;
      double rate =
          ops[i].head_size * (1.0 - ops[i].selectivity) / ops[i].cost;
      // Strictly better rate wins; ties go to the older tuple.
      if (rate > best_rate ||
          (rate == best_rate && ops[i].head_seq < best_seq)) {
        best_rate = rate;
        best_seq = ops[i].head_seq;
        best = static_cast<int>(i);
      }
    }
    return best;
  }
  std::string name() const override { return "greedy"; }
};

class ChainPolicy : public SchedulingPolicy {
 public:
  ChainPolicy(const std::vector<double>& costs,
              const std::vector<double>& sels) {
    assert(costs.size() == sels.size());
    // Progress chart points: p_0 = (0, 1); p_i = (sum cost, prod sel).
    size_t n = costs.size();
    std::vector<double> x(n + 1), y(n + 1);
    x[0] = 0.0;
    y[0] = 1.0;
    for (size_t i = 0; i < n; ++i) {
      x[i + 1] = x[i] + costs[i];
      y[i + 1] = y[i] * sels[i];
    }
    // Lower envelope: from each point, jump to the point with the
    // steepest downward slope. Every operator in a segment inherits the
    // segment's slope as its priority.
    priority_.assign(n, 0.0);
    size_t i = 0;
    while (i < n) {
      size_t best_j = i + 1;
      double best_slope = (y[i + 1] - y[i]) / (x[i + 1] - x[i]);
      for (size_t j = i + 2; j <= n; ++j) {
        double slope = (y[j] - y[i]) / (x[j] - x[i]);
        if (slope < best_slope) {
          best_slope = slope;
          best_j = j;
        }
      }
      for (size_t k = i; k < best_j; ++k) priority_[k] = -best_slope;
      i = best_j;
    }
  }

  int Pick(const std::vector<OpView>& ops) override {
    int best = -1;
    double best_pri = -1.0;
    uint64_t best_seq = UINT64_MAX;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].queue_len == 0) continue;
      double pri = i < priority_.size() ? priority_[i] : 0.0;
      // Chain: highest envelope priority; FIFO among equals.
      if (pri > best_pri || (pri == best_pri && ops[i].head_seq < best_seq)) {
        best_pri = pri;
        best_seq = ops[i].head_seq;
        best = static_cast<int>(i);
      }
    }
    return best;
  }
  std::string name() const override { return "chain"; }

 private:
  std::vector<double> priority_;
};

}  // namespace

std::unique_ptr<SchedulingPolicy> MakeFifoPolicy() {
  return std::make_unique<FifoPolicy>();
}

std::unique_ptr<SchedulingPolicy> MakeRoundRobinPolicy() {
  return std::make_unique<RoundRobinPolicy>();
}

std::unique_ptr<SchedulingPolicy> MakeGreedyPolicy() {
  return std::make_unique<GreedyPolicy>();
}

std::unique_ptr<SchedulingPolicy> MakeChainPolicy(
    const std::vector<double>& costs, const std::vector<double>& sels) {
  return std::make_unique<ChainPolicy>(costs, sels);
}

}  // namespace sqp
