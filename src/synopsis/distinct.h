#ifndef SQP_SYNOPSIS_DISTINCT_H_
#define SQP_SYNOPSIS_DISTINCT_H_

#include <cstdint>
#include <vector>

#include "common/value.h"

namespace sqp {

/// Flajolet-Martin distinct counter: k independent bitmaps of trailing-
/// zero observations; estimate = 2^(mean lowest-unset-bit) / 0.77351.
class FlajoletMartin {
 public:
  FlajoletMartin(size_t num_maps, uint64_t seed);

  void Add(const Value& v);

  double Estimate() const;

  size_t MemoryBytes() const {
    return sizeof(*this) + bitmaps_.capacity() * sizeof(uint64_t);
  }

 private:
  std::vector<uint64_t> bitmaps_;
  std::vector<uint64_t> seeds_;
};

/// HyperLogLog distinct counter with 2^precision registers, including the
/// small-range linear-counting correction.
class HyperLogLog {
 public:
  /// `precision` in [4, 16].
  explicit HyperLogLog(int precision);

  void Add(const Value& v);

  double Estimate() const;

  /// Merges another HLL (same precision) — distributed distinct counting.
  void Merge(const HyperLogLog& other);

  int precision() const { return precision_; }

  size_t MemoryBytes() const {
    return sizeof(*this) + registers_.capacity();
  }

 private:
  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace sqp

#endif  // SQP_SYNOPSIS_DISTINCT_H_
