#include "synopsis/misra_gries.h"

#include <algorithm>
#include <functional>

namespace sqp {

MisraGries::MisraGries(size_t k) : k_(k) {}

void MisraGries::Add(const Value& v) {
  ++n_;
  auto it = counters_.find(v);
  if (it != counters_.end()) {
    ++it->second;
    return;
  }
  if (counters_.size() < k_) {
    counters_.emplace(v, 1);
    return;
  }
  // Decrement-all step; erase counters that hit zero.
  for (auto cit = counters_.begin(); cit != counters_.end();) {
    if (--cit->second == 0) {
      cit = counters_.erase(cit);
    } else {
      ++cit;
    }
  }
}

uint64_t MisraGries::Estimate(const Value& v) const {
  auto it = counters_.find(v);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<std::pair<Value, uint64_t>> MisraGries::HeavyHitters(
    uint64_t threshold) const {
  std::vector<std::pair<Value, uint64_t>> out;
  for (const auto& [v, c] : counters_) {
    if (c > threshold) out.emplace_back(v, c);
  }
  return out;
}

void MisraGries::Merge(const MisraGries& other) {
  n_ += other.n_;
  for (const auto& [v, c] : other.counters_) {
    counters_[v] += c;
  }
  if (counters_.size() <= k_) return;
  // Prune: subtract the (k+1)-th largest count from everyone, drop
  // non-positive counters — the standard mergeable-summary reduction.
  std::vector<uint64_t> counts;
  counts.reserve(counters_.size());
  for (const auto& [v, c] : counters_) counts.push_back(c);
  std::nth_element(counts.begin(), counts.begin() + static_cast<ptrdiff_t>(k_),
                   counts.end(), std::greater<uint64_t>());
  uint64_t cut = counts[k_];
  for (auto it = counters_.begin(); it != counters_.end();) {
    if (it->second <= cut) {
      it = counters_.erase(it);
    } else {
      it->second -= cut;
      ++it;
    }
  }
}

size_t MisraGries::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [v, c] : counters_) bytes += v.MemoryBytes() + sizeof(c) + 16;
  return bytes;
}

}  // namespace sqp
