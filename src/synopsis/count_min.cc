#include "synopsis/count_min.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace sqp {

CountMinSketch::CountMinSketch(size_t width, size_t depth, uint64_t seed)
    : width_(width), depth_(depth) {
  table_.resize(width * depth, 0);
  Rng rng(seed);
  row_seeds_.reserve(depth);
  for (size_t i = 0; i < depth; ++i) row_seeds_.push_back(rng.Next() | 1);
}

CountMinSketch CountMinSketch::FromError(double eps, double delta,
                                         uint64_t seed) {
  size_t width = static_cast<size_t>(std::ceil(M_E / eps));
  size_t depth = static_cast<size_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(std::max<size_t>(1, width), std::max<size_t>(1, depth),
                        seed);
}

size_t CountMinSketch::Index(size_t row, const Value& v) const {
  // Row-salted multiply-shift over the value's base hash.
  uint64_t h = v.Hash();
  h *= row_seeds_[row];
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<size_t>(h % width_);
}

void CountMinSketch::Add(const Value& v, uint64_t count) {
  total_ += count;
  for (size_t r = 0; r < depth_; ++r) {
    table_[r * width_ + Index(r, v)] += count;
  }
}

uint64_t CountMinSketch::Estimate(const Value& v) const {
  uint64_t best = UINT64_MAX;
  for (size_t r = 0; r < depth_; ++r) {
    best = std::min(best, table_[r * width_ + Index(r, v)]);
  }
  return best == UINT64_MAX ? 0 : best;
}

}  // namespace sqp
