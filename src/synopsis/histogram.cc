#include "synopsis/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sqp {

EquiWidthHistogram::EquiWidthHistogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)) {
  assert(lo < hi && buckets > 0);
  counts_.resize(buckets, 0);
}

void EquiWidthHistogram::Add(double x) {
  ++total_;
  if (x < lo_) x = lo_;
  if (x >= hi_) x = std::nextafter(hi_, lo_);
  size_t b = static_cast<size_t>((x - lo_) / width_);
  if (b >= counts_.size()) b = counts_.size() - 1;
  ++counts_[b];
}

double EquiWidthHistogram::EstimateRangeCount(double a, double b) const {
  if (b <= a) return 0.0;
  a = std::max(a, lo_);
  b = std::min(b, hi_);
  if (b <= a) return 0.0;
  double est = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    double blo = lo_ + width_ * static_cast<double>(i);
    double bhi = blo + width_;
    double olo = std::max(a, blo);
    double ohi = std::min(b, bhi);
    if (ohi > olo) {
      est += static_cast<double>(counts_[i]) * (ohi - olo) / width_;
    }
  }
  return est;
}

double EquiWidthHistogram::EstimateSelectivity(double a, double b) const {
  if (total_ == 0) return 0.0;
  return EstimateRangeCount(a, b) / static_cast<double>(total_);
}

Result<EquiDepthHistogram> EquiDepthHistogram::Build(
    std::vector<double> values, size_t buckets, uint64_t stream_total) {
  if (values.empty()) return Status::InvalidArgument("empty sample");
  if (buckets == 0) return Status::InvalidArgument("buckets must be > 0");
  std::sort(values.begin(), values.end());
  EquiDepthHistogram h;
  h.stream_total_ = stream_total;
  h.per_bucket_ =
      static_cast<double>(stream_total) / static_cast<double>(buckets);
  h.bounds_.reserve(buckets + 1);
  for (size_t i = 0; i <= buckets; ++i) {
    size_t idx = std::min(values.size() - 1,
                          i * values.size() / buckets);
    if (i == buckets) idx = values.size() - 1;
    h.bounds_.push_back(values[idx]);
  }
  // Widen the last boundary slightly so max values fall inside.
  h.bounds_.back() = std::nextafter(h.bounds_.back(),
                                    h.bounds_.back() + 1.0);
  return h;
}

double EquiDepthHistogram::EstimateRangeCount(double a, double b) const {
  if (b <= a || bounds_.size() < 2) return 0.0;
  double est = 0.0;
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    double blo = bounds_[i];
    double bhi = bounds_[i + 1];
    if (bhi <= blo) continue;  // Degenerate bucket (duplicate boundary).
    double olo = std::max(a, blo);
    double ohi = std::min(b, bhi);
    if (ohi > olo) est += per_bucket_ * (ohi - olo) / (bhi - blo);
  }
  return est;
}

double EquiDepthHistogram::EstimateSelectivity(double a, double b) const {
  if (stream_total_ == 0) return 0.0;
  return EstimateRangeCount(a, b) / static_cast<double>(stream_total_);
}

}  // namespace sqp
