#include "synopsis/reservoir.h"

#include <algorithm>

namespace sqp {

ReservoirSample::ReservoirSample(size_t capacity, uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  sample_.reserve(capacity);
}

void ReservoirSample::Add(const Value& v) {
  ++seen_;
  if (sample_.size() < capacity_) {
    sample_.push_back(v);
    return;
  }
  // Replace a random resident with probability capacity/seen.
  uint64_t j = rng_.Uniform(seen_);
  if (j < capacity_) sample_[static_cast<size_t>(j)] = v;
}

double ReservoirSample::EstimateMean() const {
  if (sample_.empty()) return 0.0;
  double sum = 0.0;
  for (const Value& v : sample_) sum += v.ToDouble();
  return sum / static_cast<double>(sample_.size());
}

double ReservoirSample::EstimateQuantile(double q) const {
  if (sample_.empty()) return 0.0;
  std::vector<double> vals;
  vals.reserve(sample_.size());
  for (const Value& v : sample_) vals.push_back(v.ToDouble());
  std::sort(vals.begin(), vals.end());
  double pos = q * static_cast<double>(vals.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, vals.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return vals[lo] * (1.0 - frac) + vals[hi] * frac;
}

double ReservoirSample::ScaleUp(uint64_t sample_matches) const {
  if (sample_.empty()) return 0.0;
  return static_cast<double>(sample_matches) /
         static_cast<double>(sample_.size()) * static_cast<double>(seen_);
}

size_t ReservoirSample::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const Value& v : sample_) bytes += v.MemoryBytes();
  return bytes;
}

}  // namespace sqp
