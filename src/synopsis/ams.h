#ifndef SQP_SYNOPSIS_AMS_H_
#define SQP_SYNOPSIS_AMS_H_

#include <cstdint>
#include <vector>

#include "common/value.h"

namespace sqp {

/// AMS "tug-of-war" sketch (Alon-Matias-Szegedy) estimating the second
/// frequency moment F2 = sum of squared item frequencies — the synopsis
/// behind sketch-based join-size estimation. Uses medians of means:
/// `copies` independent +/-1 counters per group, `groups` groups.
class AmsSketch {
 public:
  AmsSketch(size_t groups, size_t copies, uint64_t seed);

  void Add(const Value& v, int64_t count = 1);

  /// F2 estimate: median over groups of the mean of squared counters.
  double EstimateF2() const;

  /// Estimated join (inner-product) size between two streams, each
  /// summarized by a sketch built with the same seed/dimensions.
  static double EstimateJoinSize(const AmsSketch& a, const AmsSketch& b);

  size_t groups() const { return groups_; }
  size_t copies() const { return copies_; }

  size_t MemoryBytes() const {
    return sizeof(*this) + counters_.capacity() * sizeof(int64_t);
  }

 private:
  /// +1 or -1 for counter index `i` and value `v` (4-wise independent-ish).
  int64_t Sign(size_t i, const Value& v) const;

  size_t groups_, copies_;
  std::vector<int64_t> counters_;  // groups*copies counters.
  std::vector<uint64_t> seeds_;
};

}  // namespace sqp

#endif  // SQP_SYNOPSIS_AMS_H_
