#ifndef SQP_SYNOPSIS_MISRA_GRIES_H_
#define SQP_SYNOPSIS_MISRA_GRIES_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/value.h"

namespace sqp {

/// Misra-Gries heavy hitters: with k counters, every item with true
/// frequency > n/k survives; reported counts undercount by at most n/k.
/// Powers `having count(*) > phi*|S|` queries (slide 38) in tiny space.
class MisraGries {
 public:
  explicit MisraGries(size_t k);

  void Add(const Value& v);

  /// Lower-bound frequency estimate (0 if not tracked).
  uint64_t Estimate(const Value& v) const;

  /// Candidates whose estimated frequency exceeds `threshold`.
  std::vector<std::pair<Value, uint64_t>> HeavyHitters(
      uint64_t threshold) const;

  /// Merges another summary (distributed heavy hitters, slide 55 /
  /// [BO03]-style monitoring): counters add, then the summary is pruned
  /// back to k counters by subtracting the (k+1)-largest count. The
  /// merged undercount stays bounded by (n1 + n2) / k.
  void Merge(const MisraGries& other);

  uint64_t n() const { return n_; }
  size_t num_counters() const { return counters_.size(); }
  size_t k() const { return k_; }

  size_t MemoryBytes() const;

 private:
  size_t k_;
  uint64_t n_ = 0;
  std::unordered_map<Value, uint64_t, ValueHash> counters_;
};

}  // namespace sqp

#endif  // SQP_SYNOPSIS_MISRA_GRIES_H_
