#ifndef SQP_SYNOPSIS_RESERVOIR_H_
#define SQP_SYNOPSIS_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/value.h"

namespace sqp {

/// Vitter's Algorithm R: a uniform sample of `capacity` elements from an
/// unbounded stream in O(capacity) memory. The baseline synopsis for
/// approximate aggregates (slide 38).
class ReservoirSample {
 public:
  ReservoirSample(size_t capacity, uint64_t seed);

  void Add(const Value& v);

  const std::vector<Value>& sample() const { return sample_; }
  uint64_t seen() const { return seen_; }
  size_t capacity() const { return capacity_; }

  /// Estimates the mean of the stream from the sample (numeric streams).
  double EstimateMean() const;

  /// Estimates the q-quantile (0 <= q <= 1) from the sample.
  double EstimateQuantile(double q) const;

  /// Scales a sample predicate count up to a stream-level estimate.
  /// `sample_matches` is how many sampled values satisfy the predicate.
  double ScaleUp(uint64_t sample_matches) const;

  size_t MemoryBytes() const;

 private:
  size_t capacity_;
  Rng rng_;
  std::vector<Value> sample_;
  uint64_t seen_ = 0;
};

}  // namespace sqp

#endif  // SQP_SYNOPSIS_RESERVOIR_H_
