#ifndef SQP_SYNOPSIS_EXP_HISTOGRAM_H_
#define SQP_SYNOPSIS_EXP_HISTOGRAM_H_

#include <cstdint>
#include <cstddef>
#include <deque>

namespace sqp {

/// Exponential histogram (Datar-Gionis-Indyk-Motwani): counts events in a
/// sliding time window of length W with (1+eps) relative error, in
/// O((1/eps) log^2 W) space. The canonical sliding-window synopsis —
/// exact sliding-window counts would need the whole window.
class ExpHistogram {
 public:
  /// `window` in timestamp units, `eps` relative error target.
  ExpHistogram(int64_t window, double eps);

  /// Records `count` events at time `ts` (nondecreasing).
  void Add(int64_t ts, uint64_t count = 1);

  /// Estimated number of events in (now - window, now].
  uint64_t Estimate(int64_t now);

  size_t num_buckets() const { return buckets_.size(); }

  size_t MemoryBytes() const {
    return sizeof(*this) + buckets_.size() * sizeof(Bucket);
  }

 private:
  struct Bucket {
    int64_t last_ts;  // Timestamp of most recent event in the bucket.
    uint64_t size;    // Number of events (power of two).
  };

  void Expire(int64_t now);
  void Canonicalize();

  int64_t window_;
  size_t k_;  // Max buckets of each size: ceil(1/eps)/2 + 1.
  std::deque<Bucket> buckets_;  // Oldest first.
  int64_t last_ts_ = INT64_MIN;
};

}  // namespace sqp

#endif  // SQP_SYNOPSIS_EXP_HISTOGRAM_H_
