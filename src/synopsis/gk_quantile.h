#ifndef SQP_SYNOPSIS_GK_QUANTILE_H_
#define SQP_SYNOPSIS_GK_QUANTILE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sqp {

/// Greenwald-Khanna epsilon-approximate quantile summary. Answers any
/// quantile query within eps*n rank error using O((1/eps) log(eps n))
/// space — the quantile computation "part of Gigascope, engineered to
/// reduce drops" (slide 53).
class GkQuantile {
 public:
  explicit GkQuantile(double eps);

  void Add(double x);

  /// Merges another summary built with the same eps. The merged summary
  /// answers queries within ~2*eps rank error (the standard additive
  /// degradation of GK merges); Compress() keeps the size bounded.
  void Merge(const GkQuantile& other);

  /// Value whose rank is within eps*n of q*n. Precondition: n() > 0.
  double Query(double q) const;

  uint64_t n() const { return n_; }
  size_t summary_size() const { return summary_.size(); }
  double eps() const { return eps_; }

  size_t MemoryBytes() const {
    return sizeof(*this) + summary_.capacity() * sizeof(Entry);
  }

 private:
  struct Entry {
    double v;
    uint64_t g;      // Rank gap to the previous entry.
    uint64_t delta;  // Rank uncertainty.
  };

  void Compress();

  double eps_;
  uint64_t n_ = 0;
  std::vector<Entry> summary_;  // Sorted by v.
};

}  // namespace sqp

#endif  // SQP_SYNOPSIS_GK_QUANTILE_H_
