#ifndef SQP_SYNOPSIS_HISTOGRAM_H_
#define SQP_SYNOPSIS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace sqp {

/// Equi-width histogram over a known value domain [lo, hi). Supports
/// streaming insertion and range-count / selectivity estimation — the
/// classic synopsis of the New Jersey Data Reduction Report [BDF+97].
class EquiWidthHistogram {
 public:
  /// Precondition: lo < hi, buckets > 0.
  EquiWidthHistogram(double lo, double hi, size_t buckets);

  void Add(double x);

  /// Estimated number of stream values in [a, b) under the uniform-
  /// within-bucket assumption.
  double EstimateRangeCount(double a, double b) const;

  /// EstimateRangeCount / total.
  double EstimateSelectivity(double a, double b) const;

  uint64_t total() const { return total_; }
  size_t num_buckets() const { return counts_.size(); }
  const std::vector<uint64_t>& counts() const { return counts_; }

  size_t MemoryBytes() const {
    return sizeof(*this) + counts_.capacity() * sizeof(uint64_t);
  }

 private:
  double lo_, hi_, width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

/// Equi-depth (equi-height) histogram: bucket boundaries chosen so each
/// bucket holds ~the same count. Built from a materialized sample (the
/// standard construction for streams: sample first, then build).
class EquiDepthHistogram {
 public:
  /// Builds from `values` (copied and sorted). `buckets` > 0.
  static Result<EquiDepthHistogram> Build(std::vector<double> values,
                                          size_t buckets,
                                          uint64_t stream_total);

  /// Estimated count of stream values in [a, b).
  double EstimateRangeCount(double a, double b) const;

  double EstimateSelectivity(double a, double b) const;

  /// Bucket boundaries (size = buckets + 1).
  const std::vector<double>& boundaries() const { return bounds_; }

 private:
  EquiDepthHistogram() = default;

  std::vector<double> bounds_;
  double per_bucket_ = 0.0;  // Estimated stream count per bucket.
  uint64_t stream_total_ = 0;
};

}  // namespace sqp

#endif  // SQP_SYNOPSIS_HISTOGRAM_H_
