#include "synopsis/distinct.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace sqp {

namespace {

uint64_t Remix(uint64_t h, uint64_t seed) {
  h *= seed;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

FlajoletMartin::FlajoletMartin(size_t num_maps, uint64_t seed) {
  bitmaps_.resize(num_maps, 0);
  Rng rng(seed);
  seeds_.reserve(num_maps);
  for (size_t i = 0; i < num_maps; ++i) seeds_.push_back(rng.Next() | 1);
}

void FlajoletMartin::Add(const Value& v) {
  uint64_t base = v.Hash();
  for (size_t i = 0; i < bitmaps_.size(); ++i) {
    uint64_t h = Remix(base, seeds_[i]);
    int r = h == 0 ? 63 : __builtin_ctzll(h);
    bitmaps_[i] |= (1ULL << r);
  }
}

double FlajoletMartin::Estimate() const {
  // R = mean index of lowest unset bit.
  double mean_r = 0.0;
  for (uint64_t bm : bitmaps_) {
    int r = 0;
    while (r < 64 && (bm & (1ULL << r))) ++r;
    mean_r += static_cast<double>(r);
  }
  mean_r /= static_cast<double>(bitmaps_.size());
  constexpr double kPhi = 0.77351;
  return std::pow(2.0, mean_r) / kPhi;
}

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  assert(precision >= 4 && precision <= 16);
  registers_.resize(size_t{1} << precision, 0);
}

void HyperLogLog::Add(const Value& v) {
  uint64_t h = Remix(v.Hash(), 0x9e3779b97f4a7c15ULL);
  size_t idx = static_cast<size_t>(h >> (64 - precision_));
  uint64_t rest = h << precision_;
  // Rank = position of leftmost 1 in the remaining bits (1-based).
  uint8_t rank = rest == 0 ? static_cast<uint8_t>(64 - precision_ + 1)
                           : static_cast<uint8_t>(__builtin_clzll(rest) + 1);
  registers_[idx] = std::max(registers_[idx], rank);
}

double HyperLogLog::Estimate() const {
  const size_t m = registers_.size();
  double alpha;
  switch (m) {
    case 16:
      alpha = 0.673;
      break;
    case 32:
      alpha = 0.697;
      break;
    case 64:
      alpha = 0.709;
      break;
    default:
      alpha = 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
  double sum = 0.0;
  size_t zeros = 0;
  for (uint8_t r : registers_) {
    sum += std::pow(2.0, -static_cast<double>(r));
    if (r == 0) ++zeros;
  }
  double est = alpha * static_cast<double>(m) * static_cast<double>(m) / sum;
  // Small-range correction: linear counting.
  if (est <= 2.5 * static_cast<double>(m) && zeros > 0) {
    est = static_cast<double>(m) *
          std::log(static_cast<double>(m) / static_cast<double>(zeros));
  }
  return est;
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  assert(precision_ == other.precision_);
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

}  // namespace sqp
