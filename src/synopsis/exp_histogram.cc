#include "synopsis/exp_histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sqp {

ExpHistogram::ExpHistogram(int64_t window, double eps) : window_(window) {
  assert(window > 0 && eps > 0.0);
  k_ = static_cast<size_t>(std::ceil(1.0 / eps)) / 2 + 1;
}

void ExpHistogram::Add(int64_t ts, uint64_t count) {
  assert(ts >= last_ts_);
  last_ts_ = ts;
  for (uint64_t i = 0; i < count; ++i) {
    buckets_.push_back(Bucket{ts, 1});
  }
  Canonicalize();
  Expire(ts);
}

void ExpHistogram::Canonicalize() {
  // Merge oldest pairs whenever more than k buckets share a size.
  // Scan from the newest end; sizes are nondecreasing toward the front.
  bool merged = true;
  while (merged) {
    merged = false;
    size_t run = 0;
    uint64_t run_size = 0;
    // Find the newest run exceeding k_ + 1 buckets of equal size.
    for (size_t i = buckets_.size(); i-- > 0;) {
      if (buckets_[i].size != run_size) {
        run_size = buckets_[i].size;
        run = 1;
      } else {
        ++run;
      }
      if (run > k_ + 1) {
        // The run covers [i, i + run - 1]; merge its two oldest buckets
        // (i and i+1) into one of double size, keeping the newer
        // bucket's last_ts.
        assert(i + 1 < buckets_.size() && buckets_[i + 1].size == run_size);
        buckets_[i].size *= 2;
        buckets_[i].last_ts = buckets_[i + 1].last_ts;
        buckets_.erase(buckets_.begin() + static_cast<ptrdiff_t>(i) + 1);
        merged = true;
        break;
      }
    }
  }
}

void ExpHistogram::Expire(int64_t now) {
  int64_t bound = now - window_;
  while (!buckets_.empty() && buckets_.front().last_ts <= bound) {
    buckets_.pop_front();
  }
}

uint64_t ExpHistogram::Estimate(int64_t now) {
  last_ts_ = std::max(last_ts_, now);
  Expire(now);
  if (buckets_.empty()) return 0;
  uint64_t total = 0;
  for (const Bucket& b : buckets_) total += b.size;
  // The oldest bucket straddles the window boundary: count half of it.
  return total - buckets_.front().size / 2;
}

}  // namespace sqp
