#ifndef SQP_SYNOPSIS_COUNT_MIN_H_
#define SQP_SYNOPSIS_COUNT_MIN_H_

#include <cstdint>
#include <vector>

#include "common/value.h"

namespace sqp {

/// Count-Min sketch (Cormode & Muthukrishnan): approximate frequency
/// counts in sublinear space. Estimates overcount by at most
/// eps * total with probability 1 - delta when sized with
/// width = ceil(e/eps), depth = ceil(ln(1/delta)).
class CountMinSketch {
 public:
  /// Direct dimensions.
  CountMinSketch(size_t width, size_t depth, uint64_t seed);

  /// Sizes the sketch from accuracy targets.
  static CountMinSketch FromError(double eps, double delta, uint64_t seed);

  void Add(const Value& v, uint64_t count = 1);

  /// Point frequency estimate (never underestimates).
  uint64_t Estimate(const Value& v) const;

  uint64_t total() const { return total_; }
  size_t width() const { return width_; }
  size_t depth() const { return depth_; }

  size_t MemoryBytes() const {
    return sizeof(*this) + table_.capacity() * sizeof(uint64_t);
  }

 private:
  size_t Index(size_t row, const Value& v) const;

  size_t width_, depth_;
  std::vector<uint64_t> table_;  // depth x width, row-major.
  std::vector<uint64_t> row_seeds_;
  uint64_t total_ = 0;
};

}  // namespace sqp

#endif  // SQP_SYNOPSIS_COUNT_MIN_H_
