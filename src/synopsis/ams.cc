#include "synopsis/ams.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"

namespace sqp {

AmsSketch::AmsSketch(size_t groups, size_t copies, uint64_t seed)
    : groups_(groups), copies_(copies) {
  counters_.resize(groups * copies, 0);
  Rng rng(seed);
  seeds_.reserve(groups * copies);
  for (size_t i = 0; i < groups * copies; ++i) seeds_.push_back(rng.Next() | 1);
}

int64_t AmsSketch::Sign(size_t i, const Value& v) const {
  uint64_t h = v.Hash() * seeds_[i];
  h ^= h >> 29;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 32;
  return (h & 1) ? 1 : -1;
}

void AmsSketch::Add(const Value& v, int64_t count) {
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += Sign(i, v) * count;
  }
}

double AmsSketch::EstimateF2() const {
  std::vector<double> group_means;
  group_means.reserve(groups_);
  for (size_t g = 0; g < groups_; ++g) {
    double mean = 0.0;
    for (size_t c = 0; c < copies_; ++c) {
      double x = static_cast<double>(counters_[g * copies_ + c]);
      mean += x * x;
    }
    group_means.push_back(mean / static_cast<double>(copies_));
  }
  std::sort(group_means.begin(), group_means.end());
  size_t m = group_means.size() / 2;
  if (group_means.size() % 2 == 1) return group_means[m];
  return (group_means[m - 1] + group_means[m]) / 2.0;
}

double AmsSketch::EstimateJoinSize(const AmsSketch& a, const AmsSketch& b) {
  assert(a.groups_ == b.groups_ && a.copies_ == b.copies_);
  std::vector<double> group_means;
  group_means.reserve(a.groups_);
  for (size_t g = 0; g < a.groups_; ++g) {
    double mean = 0.0;
    for (size_t c = 0; c < a.copies_; ++c) {
      size_t i = g * a.copies_ + c;
      mean += static_cast<double>(a.counters_[i]) *
              static_cast<double>(b.counters_[i]);
    }
    group_means.push_back(mean / static_cast<double>(a.copies_));
  }
  std::sort(group_means.begin(), group_means.end());
  size_t m = group_means.size() / 2;
  if (group_means.size() % 2 == 1) return group_means[m];
  return (group_means[m - 1] + group_means[m]) / 2.0;
}

}  // namespace sqp
