#include "synopsis/gk_quantile.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sqp {

GkQuantile::GkQuantile(double eps) : eps_(eps) {
  assert(eps > 0.0 && eps < 1.0);
}

void GkQuantile::Add(double x) {
  // Find insertion point (first entry with v >= x).
  auto it = std::lower_bound(
      summary_.begin(), summary_.end(), x,
      [](const Entry& e, double val) { return e.v < val; });

  uint64_t delta;
  if (it == summary_.begin() || it == summary_.end()) {
    delta = 0;  // New min or max is exact.
  } else {
    delta = static_cast<uint64_t>(std::floor(
        2.0 * eps_ * static_cast<double>(n_)));
  }
  summary_.insert(it, Entry{x, 1, delta});
  ++n_;

  // Compress periodically (every 1/(2 eps) insertions).
  if (n_ % std::max<uint64_t>(
               1, static_cast<uint64_t>(1.0 / (2.0 * eps_))) == 0) {
    Compress();
  }
}

void GkQuantile::Compress() {
  if (summary_.size() < 3) return;
  uint64_t threshold = static_cast<uint64_t>(
      std::floor(2.0 * eps_ * static_cast<double>(n_)));
  std::vector<Entry> out;
  out.reserve(summary_.size());
  out.push_back(summary_.front());
  // Merge adjacent entries when the combined band fits the error budget.
  for (size_t i = 1; i + 1 < summary_.size(); ++i) {
    Entry& e = summary_[i];
    Entry& next = summary_[i + 1];
    if (e.g + next.g + next.delta < threshold) {
      next.g += e.g;  // Absorb e into its successor.
    } else {
      out.push_back(e);
    }
  }
  out.push_back(summary_.back());
  summary_ = std::move(out);
}

void GkQuantile::Merge(const GkQuantile& other) {
  if (other.summary_.empty()) return;
  std::vector<Entry> merged;
  merged.reserve(summary_.size() + other.summary_.size());
  std::merge(summary_.begin(), summary_.end(), other.summary_.begin(),
             other.summary_.end(), std::back_inserter(merged),
             [](const Entry& a, const Entry& b) { return a.v < b.v; });
  summary_ = std::move(merged);
  n_ += other.n_;
  Compress();
}

double GkQuantile::Query(double q) const {
  assert(n_ > 0);
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(n_)));
  uint64_t margin = static_cast<uint64_t>(
      std::ceil(eps_ * static_cast<double>(n_)));

  // Return the entry whose rank interval [rmin, rmax] lies closest to
  // the requested rank. The GK invariant (g + delta <= 2*eps*n)
  // guarantees some entry within eps*n; choosing the nearest interval
  // additionally behaves gracefully at the extreme quantiles, where the
  // textbook "first rmax > rank + eps*n" scan falls off the end and
  // returns the maximum.
  (void)margin;
  uint64_t rmin = 0;
  double best_v = summary_.front().v;
  uint64_t best_dist = UINT64_MAX;
  for (size_t i = 0; i < summary_.size(); ++i) {
    rmin += summary_[i].g;
    uint64_t rmax = rmin + summary_[i].delta;
    uint64_t dist = 0;
    if (rank < rmin) {
      dist = rmin - rank;
    } else if (rank > rmax) {
      dist = rank - rmax;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best_v = summary_[i].v;
    }
  }
  return best_v;
}

}  // namespace sqp
