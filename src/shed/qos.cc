#include "shed/qos.h"

#include <algorithm>
#include <cmath>

namespace sqp {

Result<QosCurve> QosCurve::Make(
    std::vector<std::pair<double, double>> points) {
  if (points.size() < 2) {
    return Status::InvalidArgument("QoS curve needs at least two points");
  }
  for (size_t i = 0; i < points.size(); ++i) {
    if (points[i].first < 0.0 || points[i].first > 1.0 ||
        points[i].second < 0.0 || points[i].second > 1.0) {
      return Status::InvalidArgument("QoS points must lie in [0,1]x[0,1]");
    }
    if (i > 0 && points[i].first <= points[i - 1].first) {
      return Status::InvalidArgument("QoS x-coordinates must be increasing");
    }
  }
  QosCurve c;
  c.pts_ = std::move(points);
  return c;
}

double QosCurve::Utility(double x) const {
  x = std::clamp(x, 0.0, 1.0);
  if (x <= pts_.front().first) return pts_.front().second;
  for (size_t i = 1; i < pts_.size(); ++i) {
    if (x <= pts_[i].first) {
      double x0 = pts_[i - 1].first, y0 = pts_[i - 1].second;
      double x1 = pts_[i].first, y1 = pts_[i].second;
      return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
    }
  }
  return pts_.back().second;
}

QosCurve QosCurve::Linear() {
  return *Make({{0.0, 0.0}, {1.0, 1.0}});
}

QosCurve QosCurve::Knee(double knee) {
  knee = std::clamp(knee, 0.01, 0.99);
  return *Make({{0.0, 0.0}, {knee, 0.1}, {1.0, 1.0}});
}

QosAllocation AllocateCapacity(const std::vector<double>& rates,
                               const std::vector<QosCurve>& curves,
                               double capacity, int steps) {
  QosAllocation alloc;
  size_t n = rates.size();
  alloc.delivered_fraction.assign(n, 0.0);
  if (n == 0) return alloc;

  // Greedy water-filling: repeatedly grant a capacity quantum to the
  // query with the best marginal utility per unit capacity.
  double total_rate = 0.0;
  for (double r : rates) total_rate += r;
  double quantum = total_rate / static_cast<double>(steps * n);
  double remaining = capacity;
  while (remaining > quantum * 0.5) {
    int best = -1;
    double best_marginal = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (alloc.delivered_fraction[i] >= 1.0 || rates[i] <= 0.0) continue;
      double df = quantum / rates[i];
      double next = std::min(1.0, alloc.delivered_fraction[i] + df);
      double marginal = curves[i].Utility(next) -
                        curves[i].Utility(alloc.delivered_fraction[i]);
      if (marginal > best_marginal) {
        best_marginal = marginal;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    alloc.delivered_fraction[static_cast<size_t>(best)] = std::min(
        1.0, alloc.delivered_fraction[static_cast<size_t>(best)] +
                 quantum / rates[static_cast<size_t>(best)]);
    remaining -= quantum;
  }

  for (size_t i = 0; i < n; ++i) {
    alloc.total_utility += curves[i].Utility(alloc.delivered_fraction[i]);
  }
  return alloc;
}

}  // namespace sqp
