#include "shed/feedback_shedder.h"

#include <algorithm>

namespace sqp {

FeedbackShedder::FeedbackShedder(Options options) : options_(options) {
  // A non-positive (or NaN) target would divide the error by zero or
  // flip its sign; degrade to "keep the queue empty-ish" instead.
  if (!(options_.target_queue > 0.0)) options_.target_queue = 1.0;
  if (!(options_.kp >= 0.0)) options_.kp = 0.0;
  if (!(options_.ki >= 0.0)) options_.ki = 0.0;
}

double FeedbackShedder::Observe(size_t queue_len) {
  double error =
      (static_cast<double>(queue_len) - options_.target_queue) /
      options_.target_queue;
  // Bound the normalized error: occupancy can't go below 0 (error -1),
  // and a grossly overfull queue shouldn't slam the integral in one
  // tick — 10x target already drives the proportional term well past
  // saturation.
  error = std::clamp(error, -1.0, 10.0);
  // Conditional-integration anti-windup: while the output is pinned at a
  // bound *and* the error keeps pushing into that bound, integrating
  // further only stores up correction that must unwind later — a long
  // overload burst would otherwise leave the drop rate pinned high for
  // many ticks after load subsides. Freeze the integral instead.
  const double pinned = integral_ + options_.kp * error;
  const bool wind_high = pinned >= 1.0 && error > 0.0;
  const bool wind_low = pinned <= 0.0 && error < 0.0;
  if (!wind_high && !wind_low) {
    integral_ = std::clamp(integral_ + options_.ki * error, 0.0, 1.0);
  }
  drop_rate_ = std::clamp(integral_ + options_.kp * error, 0.0, 1.0);
  return drop_rate_;
}

}  // namespace sqp
