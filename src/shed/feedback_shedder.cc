#include "shed/feedback_shedder.h"

#include <algorithm>

namespace sqp {

double FeedbackShedder::Observe(size_t queue_len) {
  double error =
      (static_cast<double>(queue_len) - options_.target_queue) /
      options_.target_queue;
  integral_ += options_.ki * error;
  // Anti-windup: the integral term alone must stay a valid probability.
  integral_ = std::clamp(integral_, 0.0, 1.0);
  drop_rate_ = std::clamp(integral_ + options_.kp * error, 0.0, 1.0);
  return drop_rate_;
}

}  // namespace sqp
