#ifndef SQP_SHED_SHED_PLANNER_H_
#define SQP_SHED_SHED_PLANNER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace sqp {

/// One candidate shedding location in a plan: dropping here costs
/// nothing upstream of the point and saves `downstream_cost` work units
/// per dropped tuple; `rate` tuples/tick flow through it.
struct ShedPoint {
  double rate = 0.0;
  double downstream_cost = 1.0;
  /// Fraction of final answers lost per unit of drop rate here (1.0 for a
  /// drop at the source of a single-query plan; < 1 when placed after a
  /// filter that would have discarded some tuples anyway).
  double answer_loss_weight = 1.0;
};

/// Result: per-point drop rates in [0,1].
struct ShedPlan {
  std::vector<double> drop_rate;
  double saved_work = 0.0;
  double expected_answer_loss = 0.0;
  bool feasible = true;
};

/// Chooses drop rates so total work fits `capacity`, losing as little of
/// the answer as possible: sheds first at points with the highest
/// work-saved-per-answer-lost ratio ([BDM03]-style greedy placement).
///
/// `current_load` is the plan's work demand per tick; if it already fits,
/// all drop rates are zero.
ShedPlan PlanShedding(const std::vector<ShedPoint>& points,
                      double current_load, double capacity);

}  // namespace sqp

#endif  // SQP_SHED_SHED_PLANNER_H_
