#ifndef SQP_SHED_QOS_H_
#define SQP_SHED_QOS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace sqp {

/// An Aurora-style piecewise-linear QoS (utility) curve (slide 47):
/// maps a delivered fraction (or latency, or value coverage) in [0, 1]
/// to a utility in [0, 1]. Load shedding picks drop rates maximizing
/// total utility across queries.
class QosCurve {
 public:
  /// Control points (x ascending in [0,1], y in [0,1]); linear between.
  static Result<QosCurve> Make(std::vector<std::pair<double, double>> points);

  /// Utility at delivered fraction x (clamped to [0,1]).
  double Utility(double x) const;

  /// A linear curve: utility == delivered fraction.
  static QosCurve Linear();
  /// A step-ish curve: near-full utility until `knee`, then steep drop —
  /// models hard real-time consumers.
  static QosCurve Knee(double knee);

 private:
  QosCurve() = default;
  std::vector<std::pair<double, double>> pts_;
};

/// Allocates a per-query delivery fraction under a total capacity budget
/// so that the sum of utilities is maximized (greedy marginal-utility
/// water-filling over the piecewise-linear curves — optimal for concave
/// curves, heuristic otherwise).
struct QosAllocation {
  std::vector<double> delivered_fraction;
  double total_utility = 0.0;
};

/// `rates[i]`: query i's input rate (tuples/tick). `capacity`: total
/// processable rate. Returns per-query delivery fractions in [0,1].
QosAllocation AllocateCapacity(const std::vector<double>& rates,
                               const std::vector<QosCurve>& curves,
                               double capacity, int steps = 100);

}  // namespace sqp

#endif  // SQP_SHED_QOS_H_
