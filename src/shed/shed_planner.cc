#include "shed/shed_planner.h"

#include <algorithm>
#include <numeric>

namespace sqp {

ShedPlan PlanShedding(const std::vector<ShedPoint>& points,
                      double current_load, double capacity) {
  ShedPlan plan;
  plan.drop_rate.assign(points.size(), 0.0);
  double excess = current_load - capacity;
  if (excess <= 0.0) return plan;

  // Order points by work saved per unit of answer loss, best first.
  std::vector<size_t> order(points.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    double ra = points[a].answer_loss_weight <= 0.0
                    ? 1e18
                    : points[a].downstream_cost / points[a].answer_loss_weight;
    double rb = points[b].answer_loss_weight <= 0.0
                    ? 1e18
                    : points[b].downstream_cost / points[b].answer_loss_weight;
    return ra > rb;
  });

  for (size_t idx : order) {
    if (excess <= 0.0) break;
    const ShedPoint& p = points[idx];
    double max_save = p.rate * p.downstream_cost;  // Dropping everything.
    if (max_save <= 0.0) continue;
    double frac = std::min(1.0, excess / max_save);
    plan.drop_rate[idx] = frac;
    double saved = frac * max_save;
    plan.saved_work += saved;
    plan.expected_answer_loss += frac * p.answer_loss_weight;
    excess -= saved;
  }
  plan.feasible = excess <= 1e-9;
  plan.expected_answer_loss = std::min(1.0, plan.expected_answer_loss);
  return plan;
}

}  // namespace sqp
