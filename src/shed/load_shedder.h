#ifndef SQP_SHED_LOAD_SHEDDER_H_
#define SQP_SHED_LOAD_SHEDDER_H_

#include <atomic>
#include <memory>
#include <string>

#include "common/rng.h"
#include "exec/expr.h"
#include "exec/operator.h"

namespace sqp {

/// Random load shedding (slide 44): drops each tuple independently with
/// probability `drop_rate`. Downstream aggregate answers can be scaled by
/// 1/(1-p) to stay approximately unbiased — `scale_factor()` exposes it.
///
/// `drop_rate` and `dropped` are atomic so a monitoring/control thread
/// (StreamEngine::EnableAdaptiveShedding) can retune the rate and read
/// the loss counter while the data path runs. The data path itself must
/// stay single-threaded (rng_ is not synchronized).
class RandomDropOp : public Operator {
 public:
  RandomDropOp(double drop_rate, uint64_t seed,
               std::string name = "random-drop");

  void Push(const Element& e, int port = 0) override;

  void set_drop_rate(double p) {
    drop_rate_.store(p, std::memory_order_relaxed);
  }
  double drop_rate() const {
    return drop_rate_.load(std::memory_order_relaxed);
  }
  double scale_factor() const {
    double p = drop_rate();
    return p >= 1.0 ? 0.0 : 1.0 / (1.0 - p);
  }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> drop_rate_;
  Rng rng_;
  std::atomic<uint64_t> dropped_{0};
};

/// Semantic load shedding (slide 44): drops tuples by *value*, keeping
/// the ones that matter to the query/QoS. Tuples satisfying `keep_pred`
/// always pass; the rest are dropped with probability `drop_rate`
/// (1.0 = drop all non-matching tuples under overload).
class SemanticDropOp : public Operator {
 public:
  SemanticDropOp(ExprRef keep_pred, double drop_rate, uint64_t seed,
                 std::string name = "semantic-drop");

  void Push(const Element& e, int port = 0) override;

  void set_drop_rate(double p) { drop_rate_ = p; }
  double drop_rate() const { return drop_rate_; }
  uint64_t dropped() const { return dropped_; }

 private:
  ExprRef keep_pred_;
  double drop_rate_;
  Rng rng_;
  uint64_t dropped_ = 0;
};

}  // namespace sqp

#endif  // SQP_SHED_LOAD_SHEDDER_H_
