#include "shed/load_shedder.h"

namespace sqp {

RandomDropOp::RandomDropOp(double drop_rate, uint64_t seed, std::string name)
    : Operator(std::move(name)), drop_rate_(drop_rate), rng_(seed) {}

void RandomDropOp::Push(const Element& e, int /*port*/) {
  CountIn(e);
  if (e.is_punctuation()) {
    Emit(e);
    return;
  }
  if (rng_.Bernoulli(drop_rate_.load(std::memory_order_relaxed))) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Emit(e);
}

SemanticDropOp::SemanticDropOp(ExprRef keep_pred, double drop_rate,
                               uint64_t seed, std::string name)
    : Operator(std::move(name)),
      keep_pred_(std::move(keep_pred)),
      drop_rate_(drop_rate),
      rng_(seed) {}

void SemanticDropOp::Push(const Element& e, int /*port*/) {
  CountIn(e);
  if (e.is_punctuation()) {
    Emit(e);
    return;
  }
  if (!Truthy(keep_pred_->Eval(*e.tuple())) && rng_.Bernoulli(drop_rate_)) {
    ++dropped_;
    return;
  }
  Emit(e);
}

}  // namespace sqp
