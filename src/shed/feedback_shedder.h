#ifndef SQP_SHED_FEEDBACK_SHEDDER_H_
#define SQP_SHED_FEEDBACK_SHEDDER_H_

#include <cstddef>
#include <cstdint>

namespace sqp {

/// Aurora-style introspective load shedding (slides 44/47): a feedback
/// controller that watches queue occupancy and adjusts a drop
/// probability so the queue settles near a target instead of growing
/// until the bounded queue drops indiscriminately.
///
/// The controller is proportional-integral on the normalized occupancy
/// error; the integral term finds the steady-state drop rate
/// (1 - capacity/rate) without knowing either rate, and the proportional
/// term reacts to bursts.
class FeedbackShedder {
 public:
  struct Options {
    /// Queue occupancy to hold (elements).
    double target_queue = 100.0;
    /// Proportional gain on normalized error (error / target).
    double kp = 0.2;
    /// Integral gain per Observe() call.
    double ki = 0.02;
  };

  /// Non-positive / non-finite tuning values are sanitized: target_queue
  /// falls back to 1 (treat any occupancy as pressure), negative gains
  /// to 0.
  explicit FeedbackShedder(Options options);

  /// Feeds one queue-length observation (call once per tick); returns
  /// the updated drop probability in [0, 1].
  double Observe(size_t queue_len);

  double drop_rate() const { return drop_rate_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  double integral_ = 0.0;
  double drop_rate_ = 0.0;
};

}  // namespace sqp

#endif  // SQP_SHED_FEEDBACK_SHEDDER_H_
