#ifndef SQP_COMMON_TUPLE_H_
#define SQP_COMMON_TUPLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/value.h"

namespace sqp {

/// One stream element's payload: a fixed-arity row of Values plus a
/// timestamp in the stream's ordering domain.
///
/// The timestamp is carried out-of-band (`ts`) so that window managers and
/// joins touch it without schema lookups; schemas whose ordering attribute
/// is also a visible column simply mirror `ts` into that column.
class Tuple {
 public:
  Tuple() = default;
  Tuple(int64_t ts, std::vector<Value> values)
      : ts_(ts), values_(std::move(values)) {}

  int64_t ts() const { return ts_; }
  void set_ts(int64_t ts) { ts_ = ts; }

  size_t arity() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  /// Approximate in-memory footprint in bytes (window/queue accounting).
  size_t MemoryBytes() const;

  /// "(ts=5, [1, 2.5, abc])".
  std::string ToString() const;

  bool operator==(const Tuple& other) const {
    return ts_ == other.ts_ && values_ == other.values_;
  }

 private:
  int64_t ts_ = 0;
  std::vector<Value> values_;
};

/// Tuples are shared (immutable after construction) so joins and windows
/// can retain them without copying payloads.
using TupleRef = std::shared_ptr<const Tuple>;

/// Convenience constructors.
TupleRef MakeTuple(int64_t ts, std::vector<Value> values);
TupleRef MakeTuple(std::vector<Value> values);

/// Hash of a subset of columns — the grouping/join key abstraction.
struct Key {
  std::vector<Value> parts;

  bool operator==(const Key& other) const { return parts == other.parts; }
  std::string ToString() const;
};

/// A borrowed, zero-allocation view of the key `cols` of a tuple —
/// three words on the stack, valid only while the tuple it references
/// is. Probe hash tables with it (heterogeneous lookup through
/// KeyHash/KeyEq) and materialize an owning Key only when an insert is
/// actually needed, so hot probe paths (hash join, group-by) never heap-
/// allocate for keys that already exist.
class KeyView {
 public:
  KeyView(const Tuple& t, const std::vector<int>& cols)
      : t_(&t), cols_(cols.data()), n_(cols.size()) {}

  size_t size() const { return n_; }
  const Value& part(size_t i) const {
    return t_->at(static_cast<size_t>(cols_[i]));
  }

  /// Hash-consistent with KeyHash(Key) for an equal owning key.
  size_t Hash() const;

  bool Equals(const Key& k) const;

  /// The one allocating step: copies the borrowed columns into an
  /// owning Key (use on genuine inserts only).
  Key Materialize() const;

 private:
  const Tuple* t_;
  const int* cols_;
  size_t n_;
};

/// Transparent hash: lets unordered containers keyed by Key be probed
/// with a borrowed KeyView (C++20 heterogeneous lookup, no Key
/// materialization on the probe path).
struct KeyHash {
  using is_transparent = void;
  size_t operator()(const Key& k) const;
  size_t operator()(const KeyView& v) const { return v.Hash(); }
};

/// Transparent equality, the other half of heterogeneous Key lookup.
struct KeyEq {
  using is_transparent = void;
  bool operator()(const Key& a, const Key& b) const { return a == b; }
  bool operator()(const KeyView& v, const Key& k) const {
    return v.Equals(k);
  }
  bool operator()(const Key& k, const KeyView& v) const {
    return v.Equals(k);
  }
};

/// Key-indexed hash containers with KeyView probing enabled — the
/// default table shape for joins and grouped aggregation.
template <typename V>
using KeyMap = std::unordered_map<Key, V, KeyHash, KeyEq>;
using KeySet = std::unordered_set<Key, KeyHash, KeyEq>;

/// Extracts `cols` of `t` as a Key.
Key ExtractKey(const Tuple& t, const std::vector<int>& cols);

/// Hash of a single value as a one-part key — identical to
/// KeyView::Hash/KeyHash over a one-column key, so key-addressed
/// punctuations (Punctuation::CloseKey) hash-route to the same
/// partition as the tuples they close.
size_t OneValueKeyHash(const Value& v);

}  // namespace sqp

#endif  // SQP_COMMON_TUPLE_H_
