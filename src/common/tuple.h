#ifndef SQP_COMMON_TUPLE_H_
#define SQP_COMMON_TUPLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace sqp {

/// One stream element's payload: a fixed-arity row of Values plus a
/// timestamp in the stream's ordering domain.
///
/// The timestamp is carried out-of-band (`ts`) so that window managers and
/// joins touch it without schema lookups; schemas whose ordering attribute
/// is also a visible column simply mirror `ts` into that column.
class Tuple {
 public:
  Tuple() = default;
  Tuple(int64_t ts, std::vector<Value> values)
      : ts_(ts), values_(std::move(values)) {}

  int64_t ts() const { return ts_; }
  void set_ts(int64_t ts) { ts_ = ts; }

  size_t arity() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  /// Approximate in-memory footprint in bytes (window/queue accounting).
  size_t MemoryBytes() const;

  /// "(ts=5, [1, 2.5, abc])".
  std::string ToString() const;

  bool operator==(const Tuple& other) const {
    return ts_ == other.ts_ && values_ == other.values_;
  }

 private:
  int64_t ts_ = 0;
  std::vector<Value> values_;
};

/// Tuples are shared (immutable after construction) so joins and windows
/// can retain them without copying payloads.
using TupleRef = std::shared_ptr<const Tuple>;

/// Convenience constructors.
TupleRef MakeTuple(int64_t ts, std::vector<Value> values);
TupleRef MakeTuple(std::vector<Value> values);

/// Hash of a subset of columns — the grouping/join key abstraction.
struct Key {
  std::vector<Value> parts;

  bool operator==(const Key& other) const { return parts == other.parts; }
  std::string ToString() const;
};

struct KeyHash {
  size_t operator()(const Key& k) const;
};

/// Extracts `cols` of `t` as a Key.
Key ExtractKey(const Tuple& t, const std::vector<int>& cols);

}  // namespace sqp

#endif  // SQP_COMMON_TUPLE_H_
