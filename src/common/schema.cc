#include "common/schema.h"

namespace sqp {

Result<Schema> Schema::WithOrdering(std::vector<Field> fields,
                                    const std::string& ts_field) {
  Schema schema(std::move(fields));
  int idx = schema.FieldIndex(ts_field);
  if (idx < 0) {
    return Status::InvalidArgument("ordering field not in schema: " + ts_field);
  }
  if (schema.field(idx).type != ValueType::kInt) {
    return Status::InvalidArgument("ordering field must be int: " + ts_field);
  }
  schema.ordering_index_ = idx;
  return schema;
}

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<int> Schema::RequireField(const std::string& name) const {
  int idx = FieldIndex(name);
  if (idx < 0) return Status::NotFound("no such field: " + name);
  return idx;
}

int Schema::AddField(Field field) {
  fields_.push_back(std::move(field));
  return static_cast<int>(fields_.size()) - 1;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    if (static_cast<int>(i) == ordering_index_) out += "*";
    out += ":";
    out += ValueTypeName(fields_[i].type);
  }
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  if (ordering_index_ != other.ordering_index_) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name ||
        fields_[i].type != other.fields_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace sqp
