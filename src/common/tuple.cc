#include "common/tuple.h"

namespace sqp {

size_t Tuple::MemoryBytes() const {
  size_t bytes = sizeof(Tuple);
  for (const Value& v : values_) bytes += v.MemoryBytes();
  return bytes;
}

std::string Tuple::ToString() const {
  std::string out = "(ts=" + std::to_string(ts_) + ", [";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += "])";
  return out;
}

TupleRef MakeTuple(int64_t ts, std::vector<Value> values) {
  return std::make_shared<Tuple>(ts, std::move(values));
}

TupleRef MakeTuple(std::vector<Value> values) {
  return std::make_shared<Tuple>(0, std::move(values));
}

std::string Key::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ", ";
    out += parts[i].ToString();
  }
  out += "]";
  return out;
}

namespace {

// Boost-style hash combine — the one key-hash used by both the owning
// Key and the borrowed KeyView, so heterogeneous probes land in the
// same bucket.
inline size_t CombineHash(size_t h, size_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

}  // namespace

size_t KeyHash::operator()(const Key& k) const {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (const Value& v : k.parts) h = CombineHash(h, v.Hash());
  return h;
}

size_t KeyView::Hash() const {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < n_; ++i) h = CombineHash(h, part(i).Hash());
  return h;
}

bool KeyView::Equals(const Key& k) const {
  if (k.parts.size() != n_) return false;
  for (size_t i = 0; i < n_; ++i) {
    if (!(part(i) == k.parts[i])) return false;
  }
  return true;
}

Key KeyView::Materialize() const {
  Key key;
  key.parts.reserve(n_);
  for (size_t i = 0; i < n_; ++i) key.parts.push_back(part(i));
  return key;
}

Key ExtractKey(const Tuple& t, const std::vector<int>& cols) {
  Key key;
  key.parts.reserve(cols.size());
  for (int c : cols) key.parts.push_back(t.at(static_cast<size_t>(c)));
  return key;
}

size_t OneValueKeyHash(const Value& v) {
  return CombineHash(0x9e3779b97f4a7c15ULL, v.Hash());
}

}  // namespace sqp
