#include "common/tuple.h"

namespace sqp {

size_t Tuple::MemoryBytes() const {
  size_t bytes = sizeof(Tuple);
  for (const Value& v : values_) bytes += v.MemoryBytes();
  return bytes;
}

std::string Tuple::ToString() const {
  std::string out = "(ts=" + std::to_string(ts_) + ", [";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += "])";
  return out;
}

TupleRef MakeTuple(int64_t ts, std::vector<Value> values) {
  return std::make_shared<Tuple>(ts, std::move(values));
}

TupleRef MakeTuple(std::vector<Value> values) {
  return std::make_shared<Tuple>(0, std::move(values));
}

std::string Key::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ", ";
    out += parts[i].ToString();
  }
  out += "]";
  return out;
}

size_t KeyHash::operator()(const Key& k) const {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (const Value& v : k.parts) {
    // Boost-style hash combine.
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

Key ExtractKey(const Tuple& t, const std::vector<int>& cols) {
  Key key;
  key.parts.reserve(cols.size());
  for (int c : cols) key.parts.push_back(t.at(static_cast<size_t>(c)));
  return key;
}

}  // namespace sqp
