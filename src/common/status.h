#ifndef SQP_COMMON_STATUS_H_
#define SQP_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace sqp {

/// Error codes used across the library. Mirrors the usual database-engine
/// convention (RocksDB/Arrow): recoverable failures are reported through
/// Status rather than exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kResourceExhausted,
  kUnimplemented,
  kParseError,
  kTypeError,
  kInternal,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value. All fallible public APIs in
/// streamqp return Status (or Result<T> below); internal invariant
/// violations use assertions instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper. Holds T on success, a non-OK Status otherwise.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return 42;` in a function returning Result<int>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. The status must not be OK.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sqp

/// Propagates a non-OK status from an expression, RocksDB-style.
#define SQP_RETURN_NOT_OK(expr)                  \
  do {                                           \
    ::sqp::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (false)

#endif  // SQP_COMMON_STATUS_H_
