#ifndef SQP_COMMON_VALUE_H_
#define SQP_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace sqp {

/// Runtime type of a Value / schema field.
enum class ValueType {
  kNull = 0,
  kInt,     ///< 64-bit signed integer (also used for timestamps, IPs, ports)
  kDouble,  ///< IEEE double
  kString,  ///< byte string (payloads, keywords, dialed numbers)
};

/// Returns "null" / "int" / "double" / "string".
const char* ValueTypeName(ValueType type);

/// A dynamically typed scalar — the cell type of a stream tuple.
///
/// Values are small, copyable, ordered and hashable. Mixed int/double
/// comparisons follow numeric promotion; comparisons across other type
/// boundaries order by type tag (deterministic but not meaningful), which
/// keeps Value usable as a std::map key without extra ceremony.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Raw accessors. Precondition: the value holds the requested type.
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric coercion: int and double widen to double; null is 0.0.
  /// Strings are not coerced — returns 0.0.
  double ToDouble() const;
  /// Numeric coercion to int64 (doubles truncate). Strings/null -> 0.
  int64_t ToInt() const;

  /// Renders the value for display ("null", "42", "3.5", "abc").
  std::string ToString() const;

  /// Approximate in-memory footprint in bytes (used by memory accounting).
  size_t MemoryBytes() const;

  /// Total order; numeric across int/double, type-tag order otherwise.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Stable hash suitable for hash joins and group-by tables.
  size_t Hash() const;

  /// Arithmetic used by the expression evaluator. Numeric operands only;
  /// type errors surface as Status.
  static Result<Value> Add(const Value& a, const Value& b);
  static Result<Value> Sub(const Value& a, const Value& b);
  static Result<Value> Mul(const Value& a, const Value& b);
  static Result<Value> Div(const Value& a, const Value& b);
  static Result<Value> Mod(const Value& a, const Value& b);

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace sqp

#endif  // SQP_COMMON_VALUE_H_
