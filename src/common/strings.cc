#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdint>

namespace sqp {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r'))
    ++b;
  while (e > b &&
         (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
          s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool Contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatIpv4(int64_t addr) {
  uint32_t a = static_cast<uint32_t>(addr);
  return StrFormat("%u.%u.%u.%u", (a >> 24) & 0xff, (a >> 16) & 0xff,
                   (a >> 8) & 0xff, a & 0xff);
}

}  // namespace sqp
