#ifndef SQP_COMMON_SCHEMA_H_
#define SQP_COMMON_SCHEMA_H_

#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace sqp {

/// One attribute of a stream schema.
struct Field {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// Describes the attributes of a stream or relation.
///
/// Streams may designate an *ordering attribute* (GSQL-style): an int
/// field whose values are nondecreasing across the stream (typically a
/// timestamp). Operators that require order (merge join, streaming
/// group-close) check `has_ordering()`.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Field> fields)
      : fields_(fields) {}
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  /// Builds a schema with the ordering attribute set to `ts_field`.
  /// Returns InvalidArgument if the field is missing or not kInt.
  static Result<Schema> WithOrdering(std::vector<Field> fields,
                                     const std::string& ts_field);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the named field, or -1.
  int FieldIndex(const std::string& name) const;
  /// Index of the named field, or NotFound.
  Result<int> RequireField(const std::string& name) const;

  bool has_ordering() const { return ordering_index_ >= 0; }
  /// Index of the ordering (timestamp) attribute; -1 if none.
  int ordering_index() const { return ordering_index_; }

  /// Appends a field; returns its index. Duplicate names are allowed only
  /// if `allow_duplicates` (projection outputs may alias).
  int AddField(Field field);

  /// "name:type, name:type, ..." with '*' marking the ordering attribute.
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Field> fields_;
  int ordering_index_ = -1;
};

using SchemaRef = std::shared_ptr<const Schema>;

}  // namespace sqp

#endif  // SQP_COMMON_SCHEMA_H_
