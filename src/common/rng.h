#ifndef SQP_COMMON_RNG_H_
#define SQP_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace sqp {

/// Deterministic xoshiro256** PRNG. All stream generators and samplers in
/// streamqp take explicit seeds so experiments replay exactly.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  /// Uniform 64-bit word.
  uint64_t Next();

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Exponential variate with rate lambda (mean 1/lambda).
  double Exponential(double lambda);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Geometric: number of failures before first success, probability p.
  int64_t Geometric(double p);

 private:
  uint64_t state_[4];
};

/// Zipf(n, s) sampler over {0, ..., n-1}: classic rejection-inversion.
/// Skewed key popularity drives heavy-hitter, shedding, and partial-
/// aggregation experiments.
class ZipfGenerator {
 public:
  /// `n` items, exponent `s` >= 0 (s=0 is uniform). Precondition: n > 0.
  ZipfGenerator(uint64_t n, double s);

  /// Draws an item id in [0, n).
  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  uint64_t n_;
  double s_;
  // Cumulative distribution for small n; sampled by binary search.
  std::vector<double> cdf_;
};

}  // namespace sqp

#endif  // SQP_COMMON_RNG_H_
