#ifndef SQP_COMMON_STRINGS_H_
#define SQP_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace sqp {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// True if `s` contains `needle` (byte-wise); the Gigascope P2P keyword
/// match (slide 10) uses this on packet payloads.
bool Contains(std::string_view s, std::string_view needle);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders an IPv4 address stored as int ("10.1.2.3").
std::string FormatIpv4(int64_t addr);

}  // namespace sqp

#endif  // SQP_COMMON_STRINGS_H_
