#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace sqp {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  assert(n > 0);
  // Rejection to remove modulo bias.
  uint64_t threshold = (0 - n) % n;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double lambda) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 1e-300;
  return -std::log(u) / lambda;
}

double Rng::Gaussian() {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

int64_t Rng::Geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = NextDouble();
  if (u <= 0.0) u = 1e-300;
  return static_cast<int64_t>(std::floor(std::log(u) / std::log(1.0 - p)));
}

ZipfGenerator::ZipfGenerator(uint64_t n, double s) : n_(n), s_(s) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (uint64_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  double u = rng.NextDouble();
  // Binary search for the first cdf entry >= u.
  uint64_t lo = 0, hi = n_ - 1;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace sqp
