#include "common/value.h"

#include <cmath>
#include <functional>

namespace sqp {

namespace {

bool IsNumeric(const Value& v) {
  return v.type() == ValueType::kInt || v.type() == ValueType::kDouble;
}

// Applies a binary arithmetic op with int/int -> int, otherwise double.
template <typename IntOp, typename DoubleOp>
Result<Value> Arith(const Value& a, const Value& b, const char* name,
                    IntOp int_op, DoubleOp double_op) {
  if (!IsNumeric(a) || !IsNumeric(b)) {
    return Status::TypeError(std::string(name) + " requires numeric operands, got " +
                             ValueTypeName(a.type()) + " and " +
                             ValueTypeName(b.type()));
  }
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
    return int_op(a.AsInt(), b.AsInt());
  }
  return double_op(a.ToDouble(), b.ToDouble());
}

}  // namespace

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

double Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return 0.0;
  }
}

int64_t Value::ToInt() const {
  switch (type()) {
    case ValueType::kInt:
      return AsInt();
    case ValueType::kDouble:
      return static_cast<int64_t>(AsDouble());
    default:
      return 0;
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      // Trim trailing zeros for readable benchmark output.
      std::string s = std::to_string(AsDouble());
      size_t dot = s.find('.');
      if (dot != std::string::npos) {
        size_t last = s.find_last_not_of('0');
        if (last == dot) last = dot + 1;
        s.erase(last + 1);
      }
      return s;
    }
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

size_t Value::MemoryBytes() const {
  size_t base = sizeof(Value);
  if (type() == ValueType::kString) base += AsString().capacity();
  return base;
}

int Value::Compare(const Value& other) const {
  if (IsNumeric(*this) && IsNumeric(other)) {
    if (type() == ValueType::kInt && other.type() == ValueType::kInt) {
      int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = ToDouble(), b = other.ToDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type() != other.type()) {
    return type() < other.type() ? -1 : 1;
  }
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kString: {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;  // Unreachable: numerics handled above.
  }
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt: {
      // SplitMix64 finalizer: strong avalanche for hash-join buckets.
      uint64_t x = static_cast<uint64_t>(AsInt());
      x += 0x9e3779b97f4a7c15ULL;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return x ^ (x >> 31);
    }
    case ValueType::kDouble: {
      double d = AsDouble();
      if (d == static_cast<int64_t>(d)) {
        // Make 2.0 hash like Int(2) so numeric-equal values collide.
        return Value(static_cast<int64_t>(d)).Hash();
      }
      return std::hash<double>()(d);
    }
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

Result<Value> Value::Add(const Value& a, const Value& b) {
  return Arith(
      a, b, "+", [](int64_t x, int64_t y) { return Value(x + y); },
      [](double x, double y) { return Value(x + y); });
}

Result<Value> Value::Sub(const Value& a, const Value& b) {
  return Arith(
      a, b, "-", [](int64_t x, int64_t y) { return Value(x - y); },
      [](double x, double y) { return Value(x - y); });
}

Result<Value> Value::Mul(const Value& a, const Value& b) {
  return Arith(
      a, b, "*", [](int64_t x, int64_t y) { return Value(x * y); },
      [](double x, double y) { return Value(x * y); });
}

Result<Value> Value::Div(const Value& a, const Value& b) {
  if (!IsNumeric(a) || !IsNumeric(b)) {
    return Status::TypeError("/ requires numeric operands");
  }
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
    if (b.AsInt() == 0) return Status::InvalidArgument("integer division by zero");
    return Value(a.AsInt() / b.AsInt());
  }
  double denom = b.ToDouble();
  if (denom == 0.0) return Status::InvalidArgument("division by zero");
  return Value(a.ToDouble() / denom);
}

Result<Value> Value::Mod(const Value& a, const Value& b) {
  if (a.type() != ValueType::kInt || b.type() != ValueType::kInt) {
    return Status::TypeError("% requires integer operands");
  }
  if (b.AsInt() == 0) return Status::InvalidArgument("modulo by zero");
  return Value(a.AsInt() % b.AsInt());
}

}  // namespace sqp
