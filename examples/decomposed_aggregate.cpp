// Query decomposition across the 3-level architecture (slides 14, 37,
// 54): one declarative query is split automatically into a low-level
// plan (pushed-down selection + fixed-slot partial aggregation, sized
// for an observation point) and a high-level plan (exact merge), with
// final per-minute rows landing in the DBMS relation — where one-time
// SQL (here, a HAVING-style scan) audits them.
//
//   ./build/examples/decomposed_aggregate

#include <cstdio>

#include "arch/cql_decompose.h"
#include "stream/generators.h"

int main() {
  using namespace sqp;

  cql::Catalog catalog;
  std::vector<FieldDomain> domains(gen::PacketSchema()->num_fields());
  domains[gen::PacketCols::kProtocol] = {"protocol", true, 256};
  (void)catalog.Register("packets", gen::PacketSchema(), domains);

  const char* kQuery =
      "select tb, src_ip, count(*), sum(len) from packets "
      "where protocol = 6 group by ts/60 as tb, src_ip";
  std::printf("query: %s\n\n", kQuery);

  // Decompose: WHERE pushes to the low level; count/sum split into
  // partial (low) and merge (high) phases.
  auto decomposition = DecomposeCqlAggregate(kQuery, catalog,
                                             /*low_slots=*/32);
  if (!decomposition.ok()) {
    std::printf("decomposition failed: %s\n",
                decomposition.status().ToString().c_str());
    return 1;
  }
  std::printf("low level : select(pushdown) -> partial-agg [%zu slots]\n",
              decomposition->config.low_slots);
  std::printf("high level: merge partials -> finalize -> DBMS\n\n");

  // Give the low level realistic (tight) resources and run.
  decomposition->config.low_node.queue_limit = 4096;
  decomposition->config.low_node.capacity_per_tick = 64.0;
  decomposition->config.high_node.capacity_per_tick = 1024.0;
  auto system = ThreeLevelSystem::Make(decomposition->input_schema,
                                       decomposition->config);
  if (!system.ok()) {
    std::printf("wiring failed: %s\n", system.status().ToString().c_str());
    return 1;
  }

  gen::PacketGenerator tap(gen::PacketOptions{});
  const int kPackets = 200000;
  for (int i = 0; i < kPackets; ++i) {
    (*system)->Arrive(tap.Next());
    if (i % 32 == 0) (*system)->Tick();  // Arrivals outpace one tick each.
  }
  (*system)->Drain();

  const PartialAggStats& low = (*system)->partial_agg().agg_stats();
  std::printf("packets in            : %d\n", kPackets);
  std::printf("low-level drops       : %llu (queue bound %zu)\n",
              static_cast<unsigned long long>((*system)->low_node().dropped()),
              decomposition->config.low_node.queue_limit);
  std::printf("low-level evictions   : %llu (partials pushed up early)\n",
              static_cast<unsigned long long>(low.evictions));
  std::printf("rows in DBMS relation : %zu\n\n", (*system)->db().size());

  // One-time audit query over the stored relation (slide 15: "useful to
  // audit query results of data stream system"): busiest sources.
  // DB layout: [ts, src_ip, count, sum].
  auto heavy = (*system)->db().Scan(Gt(Col(2), Lit(3.0)));
  std::printf("minutes x sources with count > 3: %zu\n", heavy.size());
  for (size_t i = 0; i < std::min<size_t>(5, heavy.size()); ++i) {
    const Tuple& r = *heavy[i];
    std::printf("  minute %4lld  src %lld  count %4.0f  bytes %8.0f\n",
                static_cast<long long>(r.at(0).AsInt() / 60),
                static_cast<long long>(r.at(1).AsInt()), r.at(2).ToDouble(),
                r.at(3).ToDouble());
  }
  return 0;
}
