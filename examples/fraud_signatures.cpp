// Telecom fraud detection (slides 6-8): the tutorial's Hancock case
// study. Per-caller signatures evolve by blending each block's observed
// behaviour (mean duration, international-call rate) into a persistent
// store; callers whose fresh observations deviate sharply from their own
// signature raise alerts. The generator injects a known fraud cohort, so
// detection quality is measurable.
//
//   ./build/examples/fraud_signatures

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "hancock/program.h"
#include "hancock/signature.h"
#include "stream/generators.h"

int main() {
  using namespace sqp;
  using gen::CdrCols;

  gen::CdrOptions options;
  options.num_callers = 2000;
  options.fraud_fraction = 0.02;
  options.seed = 2026;
  // Clean history for the first 40 blocks, then the fraud cohort's
  // behaviour changes — the pattern signature detection is built for.
  options.fraud_onset_call = 40 * 5000;
  gen::CdrGenerator cdrs(options);

  // Signature: [blended mean duration, blended intl rate] per caller —
  // the cumSec/blend pattern of slide 8. A small blend factor makes the
  // signature adapt slowly, so behaviour changes stay visible for many
  // blocks while one-off noise washes out.
  hancock::SignatureStore store(2, 0.1);
  // iterate over calls sortedby origin filteredby noIncomplete.
  hancock::SignatureProgram program(
      CdrCols::kOrigin, Eq(Col(CdrCols::kIsIncomplete), Lit(int64_t{0})));

  struct LineState {
    double dur_sum = 0;
    double intl = 0;
    int n = 0;
  };
  LineState line;
  // Alert signal: signature *drift*. The blended signature averages away
  // block noise, so a normal caller's signature barely moves between
  // checkpoints, while a behaviour change drags it far from where it
  // was — "computing evolving signatures ... looking for variations"
  // (slide 6). We snapshot signatures every kCheckpoint blocks and score
  // the normalized movement since the previous snapshot.
  std::map<int64_t, std::vector<double>> snapshot;
  std::map<int64_t, double> drift_score;
  std::map<int64_t, int> blocks_seen;

  const int kBlocks = 80;
  const int kBlockSize = 5000;
  const int kCheckpoint = 10;
  for (int b = 0; b < kBlocks; ++b) {
    std::vector<TupleRef> block;
    block.reserve(kBlockSize);
    for (int i = 0; i < kBlockSize; ++i) block.push_back(cdrs.Next());

    hancock::SignatureProgram::Events events;
    events.line_begin = [&](int64_t) { line = LineState(); };
    events.call = [&](const Tuple& c) {
      line.dur_sum += c.at(CdrCols::kDuration).ToDouble();
      line.intl += c.at(CdrCols::kIsIntl).ToDouble();
      line.n += 1;
    };
    events.line_end = [&](int64_t caller) {
      std::vector<double> obs = {line.dur_sum / line.n, line.intl / line.n};
      // Blend the observation into the signature (slide 8's blend()).
      store.Blend(caller, obs);
      blocks_seen[caller] += 1;
    };
    program.RunBlock(std::move(block), events);

    // Checkpoint: score each caller's signature drift since the last
    // snapshot, normalized per dimension.
    if ((b + 1) % kCheckpoint == 0) {
      for (auto& [caller, nblocks] : blocks_seen) {
        if (nblocks < kCheckpoint / 2) continue;  // Too little evidence.
        std::vector<double> sig = store.Get(caller);
        auto it = snapshot.find(caller);
        if (it != snapshot.end()) {
          double drift = 0;
          for (size_t d = 0; d < sig.size(); ++d) {
            drift += std::abs(sig[d] - it->second[d]) /
                     (std::abs(it->second[d]) + 1.0);
          }
          drift_score[caller] = std::max(drift_score[caller], drift);
        }
        snapshot[caller] = std::move(sig);
      }
      for (auto& [caller, nblocks] : blocks_seen) nblocks = 0;
    }
  }

  // Rank callers by peak drift between checkpoints.
  std::vector<std::pair<double, int64_t>> ranked;
  for (const auto& [caller, score] : drift_score) {
    ranked.emplace_back(score, caller);
  }
  std::sort(ranked.rbegin(), ranked.rend());

  std::printf("callers seen: %zu   signature I/O: %llu reads, %llu writes\n",
              store.size(), static_cast<unsigned long long>(store.reads()),
              static_cast<unsigned long long>(store.writes()));
  std::printf("lines processed: %llu   calls: %llu\n\n",
              static_cast<unsigned long long>(program.lines_processed()),
              static_cast<unsigned long long>(program.calls_processed()));

  int shown = 0, hits = 0;
  std::printf("top alerts (deviation | caller | truth):\n");
  for (const auto& [score, caller] : ranked) {
    bool fraud = cdrs.IsFraudCaller(caller);
    if (shown < 15) {
      std::printf("  %6.3f | caller %5lld | %s\n", score,
                  static_cast<long long>(caller),
                  fraud ? "FRAUD" : "normal");
    }
    if (shown < 40 && fraud) ++hits;
    if (++shown >= 40) break;
  }
  std::printf("\nprecision@40: %.1f%% (fraud base rate %.1f%%)\n",
              100.0 * hits / 40.0, 100.0 * options.fraud_fraction);
  return 0;
}
