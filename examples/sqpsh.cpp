// sqpsh — run continuous queries from the command line against the
// built-in synthetic streams.
//
//   sqpsh [--tuples N] [--rows K] <query> [<query> ...]
//
// Registered streams: packets (IPv4/TCP tap), cdr (call records),
// sensors (measurements). Every query sees the same interleaved feed.
//
//   ./build/examples/sqpsh --tuples 50000 \
//     "select tb, src_ip, sum(len) from packets where protocol = 6 \
//      group by ts/60 as tb, src_ip having count(*) > 5"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "arch/engine.h"
#include "stream/generators.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: sqpsh [--tuples N] [--rows K] <query> [<query>...]\n"
               "streams: packets, cdr, sensors\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqp;

  int64_t tuples = 100000;
  int64_t show_rows = 10;
  std::vector<std::string> query_texts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tuples") == 0 && i + 1 < argc) {
      tuples = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      show_rows = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
      return 0;
    } else {
      query_texts.emplace_back(argv[i]);
    }
  }
  if (query_texts.empty()) {
    Usage();
    return 2;
  }

  StreamEngine engine;
  std::vector<FieldDomain> pkt_domains(gen::PacketSchema()->num_fields());
  pkt_domains[gen::PacketCols::kProtocol] = {"protocol", true, 256};
  pkt_domains[gen::PacketCols::kIsSyn] = {"is_syn", true, 2};
  pkt_domains[gen::PacketCols::kIsAck] = {"is_ack", true, 2};
  (void)engine.RegisterStream("packets", gen::PacketSchema(), pkt_domains);
  (void)engine.RegisterStream("cdr", gen::CdrSchema());
  (void)engine.RegisterStream("sensors", gen::SensorSchema());

  std::vector<QueryHandle*> handles;
  for (const std::string& text : query_texts) {
    auto q = engine.Submit(text);
    if (!q.ok()) {
      std::fprintf(stderr, "error compiling \"%s\":\n  %s\n", text.c_str(),
                   q.status().ToString().c_str());
      return 1;
    }
    std::printf("query : %s\n", text.c_str());
    std::printf("plan  : %s\n", (*q)->plan_desc().c_str());
    std::printf("output: %s\n", (*q)->output_schema().ToString().c_str());
    std::printf("memory: %s (%s)\n\n",
                (*q)->memory().verdict == MemoryVerdict::kBounded
                    ? "BOUNDED"
                    : "UNBOUNDED",
                (*q)->memory().explanation.c_str());
    handles.push_back(*q);
  }

  gen::PacketGenerator packets(gen::PacketOptions{});
  gen::CdrGenerator cdrs(gen::CdrOptions{});
  gen::SensorGenerator sensors(gen::SensorOptions{});
  for (int64_t i = 0; i < tuples; ++i) {
    (void)engine.Ingest("packets", packets.Next());
    (void)engine.Ingest("cdr", cdrs.Next());
    (void)engine.Ingest("sensors", sensors.Next());
  }
  engine.FinishAll();

  for (QueryHandle* q : handles) {
    std::printf("== %s\n", q->text().c_str());
    std::printf("rows: %zu\n", q->result_count());
    int64_t shown = 0;
    for (const TupleRef& row : q->results()) {
      if (shown++ >= show_rows) {
        std::printf("  ... (%zu more)\n",
                    q->result_count() - static_cast<size_t>(show_rows));
        break;
      }
      std::printf("  %s\n", row->ToString().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
