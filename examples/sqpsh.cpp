// sqpsh — run continuous queries from the command line against the
// built-in synthetic streams.
//
//   sqpsh [--tuples N] [--rows K] [--parallel] [--columnar] [--shards N]
//         [--trace-every N] [--http PORT] [--linger SECS]
//         [--adaptive-shed] [--shed-target N]
//         <query|command> [<query|command> ...]
//
// Registered streams: packets (IPv4/TCP tap), cdr (call records),
// sensors (measurements). Every query sees the same interleaved feed.
//
// Commands (backslash-prefixed, mixed freely with queries):
//   \metrics        pretty-print the live metrics snapshot (mid-run and
//                   after the run): per-operator tuples in/out,
//                   selectivity, busy time, queue depth, stage stats.
//   \metrics=json   same snapshot as one JSON object
//   \metrics=prom   same snapshot in Prometheus text exposition format
//   \top            live refreshing dashboard from the continuous
//                   monitor: stream rates, per-operator throughput and
//                   selectivity, backlog, latency p50/p99, watermark
//                   lag, drop rates
//   \explain analyze [qN]
//                   per-operator profile of a running query (mid-run and
//                   final): rows in/out, selectivity, busy time, queue
//                   wait, state bytes, watermark lag vs the source
//   \events         dump the engine's structured event log after the
//                   run (query lifecycle, checkpoints, replay, shed
//                   gates, admission rejections, shard stalls)
//
//   ./build/examples/sqpsh --tuples 50000 '\metrics'
//     "select tb, src_ip, sum(len) from packets where protocol = 6
//      group by ts/60 as tb, src_ip having count(*) > 5"
//
//   # Scrapeable run: serve /metrics while ingesting, keep serving 30s.
//   ./build/examples/sqpsh --http 9464 --linger 30 --parallel
//     --adaptive-shed '\top' "select ts from packets where len > 256"
//
//   # Continuous-query server: ingest at 20k tuples/s per stream while
//   # clients POST CQL and stream results back.
//   ./build/examples/sqpsh --serve 9470 --tuples 1000000 --rate 20000
//   ./build/examples/sqpsh --connect localhost:9470 --rows 5
//     "select ts, len from packets where len > 200"

#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "arch/engine.h"
#include "server/http.h"
#include "server/query_server.h"
#include "stream/generators.h"

namespace {

enum class MetricsMode { kOff, kPretty, kJson, kProm };

void Usage() {
  std::fprintf(
      stderr,
      "usage: sqpsh [options] <query|command> [<query|command> ...]\n"
      "options:\n"
      "  --tuples N        tuples to generate per stream (default 100000)\n"
      "  --rows K          result rows to print per query (default 10)\n"
      "  --parallel        run each query on the threaded executor\n"
      "  --columnar        vectorized execution: stage workers deliver\n"
      "                    tuple runs to select/project/group-by as\n"
      "                    columnar batches (requires --parallel)\n"
      "  --shards N        key-partition each query's stateful operators\n"
      "                    (joins, keyed group-bys) across N replica\n"
      "                    threads behind a hash exchange\n"
      "  --trace-every N   sample every Nth tuple's lineage (default off)\n"
      "  --http PORT       serve GET /metrics (Prometheus), /snapshot.json,\n"
      "                    /series.json while running (0 = ephemeral port)\n"
      "  --linger SECS     keep the process (and --http endpoint) alive\n"
      "                    SECS seconds after the run finishes\n"
      "  --adaptive-shed   attach monitor-driven load shedding to each\n"
      "                    parallel query (requires --parallel)\n"
      "  --shed-target N   backlog the shedding controller holds\n"
      "                    (default 256 elements)\n"
      "  --serve PORT      run the continuous-query server: clients POST\n"
      "                    CQL to /query and stream results back over\n"
      "                    /session/<id>/results (0 = ephemeral port)\n"
      "  --rate N          pace ingest at N tuples/s per stream (serve\n"
      "                    mode; 0 = full speed, the default)\n"
      "  --punct N         inject an event-time watermark into every stream\n"
      "                    each N tuples, so windows close and \\explain\n"
      "                    analyze / \\top report watermark lag (0 = off)\n"
      "  --max-sessions N  admission cap on concurrent server queries\n"
      "  --connect H:P     act as a client: submit the query to a running\n"
      "                    --serve endpoint, stream --rows rows, close\n"
      "  --policy P        client: block|drop|shed result-queue policy\n"
      "  --queue N         client: per-session result queue capacity\n"
      "  --durable DIR     archive every ingested element (and punctuation)\n"
      "                    under DIR before delivery; on start, recover from\n"
      "                    an existing archive (checkpoint restore + suffix\n"
      "                    replay) into the submitted queries\n"
      "  --checkpoint-every N  with --durable: checkpoint operator state\n"
      "                    every N archived records (default: only a final\n"
      "                    checkpoint when the run finishes)\n"
      "  --ignore-checkpoint   with --durable: skip checkpoint restore and\n"
      "                    replay the full archive (recovery audit)\n"
      "  --replay          with --durable: no live generation — run the\n"
      "                    queries purely over the archived past\n"
      "  --help            this message\n"
      "commands:\n"
      "  \\metrics[=json|prom]  metrics snapshot mid-run and after the run\n"
      "  \\top                  live monitor dashboard (rates, selectivity,\n"
      "                        backlog, latency, watermark lag, drop rates)\n"
      "  \\explain analyze [qN] per-operator query profile (rows, sel,\n"
      "                        busy, queue wait, state, watermark lag)\n"
      "  \\events               dump the engine's structured event log\n"
      "streams: packets, cdr, sensors\n");
}

/// True for a query label the engine assigns ("q0", "q12", ...).
bool IsQueryLabel(const char* s) {
  if (s[0] != 'q' || s[1] == '\0') return false;
  for (const char* p = s + 1; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
  }
  return true;
}

/// EXPLAIN ANALYZE for every profiled query (or just `target` when
/// non-empty), rendered from a live profiler snapshot.
void PrintProfiles(const sqp::StreamEngine& engine,
                   const std::vector<sqp::QueryHandle*>& handles,
                   const std::string& target, const char* when) {
  bool any = false;
  for (const sqp::QueryHandle* q : handles) {
    if (!target.empty() && q->metrics_label() != target) continue;
    sqp::obs::QueryProfile profile;
    if (!engine.ProfileSnapshot(q, &profile)) continue;
    any = true;
    std::printf("\n--- explain analyze (%s) ---\n%s", when,
                profile.Pretty().c_str());
  }
  if (!any) {
    std::printf("\n--- explain analyze (%s) ---\n"
                "no profiled query%s%s\n",
                when, target.empty() ? "" : " matching ",
                target.c_str());
  }
}

void PrintEvents(const sqp::StreamEngine& engine) {
  const std::vector<sqp::obs::EngineEvent> events = engine.Events().Tail();
  std::printf("\n--- events (%zu retained of %llu emitted) ---\n",
              events.size(),
              static_cast<unsigned long long>(engine.Events().total()));
  const int64_t base = events.empty() ? 0 : events.front().wall_ms;
  for (const sqp::obs::EngineEvent& e : events) {
    std::printf("  #%-4llu t+%8.3fs %-20s %-4s %s\n",
                static_cast<unsigned long long>(e.seq),
                static_cast<double>(e.wall_ms - base) * 1e-3,
                sqp::obs::EventKindName(e.kind),
                e.query.empty() ? "-" : e.query.c_str(),
                e.message.c_str());
  }
}

void PrintMetrics(const sqp::StreamEngine& engine, MetricsMode mode,
                  const char* when) {
  sqp::obs::Snapshot snap = engine.Metrics().TakeSnapshot();
  switch (mode) {
    case MetricsMode::kOff:
      return;
    case MetricsMode::kPretty:
      std::printf("\n--- metrics (%s) ---\n%s", when, snap.Pretty().c_str());
      break;
    case MetricsMode::kJson:
      std::printf("%s\n", snap.ToJson().c_str());
      break;
    case MetricsMode::kProm:
      std::printf("%s", snap.ToPrometheus().c_str());
      break;
  }
}

// ---------------------------------------------------------------------
// --connect: a minimal HTTP client against a --serve endpoint. One
// connection per request (the server speaks Connection: close), cursor
// carried across long-poll calls so a re-run resumes cleanly.

int Dial(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res) !=
      0) {
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    close(fd);
    fd = -1;
  }
  freeaddrinfo(res);
  return fd;
}

bool RoundTrip(const std::string& host, int port, const std::string& request,
               std::string* head, std::string* body) {
  int fd = Dial(host, port);
  if (fd < 0) return false;
  if (!sqp::server::SendAll(fd, request.data(), request.size())) {
    close(fd);
    return false;
  }
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) raw.append(buf, n);
  close(fd);
  return sqp::server::SplitHttpResponse(raw, head, body);
}

std::string JsonStr(const std::string& body, const std::string& key) {
  const std::string pat = "\"" + key + "\":\"";
  size_t p = body.find(pat);
  if (p == std::string::npos) return "";
  p += pat.size();
  size_t e = body.find('"', p);
  return e == std::string::npos ? "" : body.substr(p, e - p);
}

int64_t JsonInt(const std::string& body, const std::string& key,
                int64_t def) {
  const std::string pat = "\"" + key + "\":";
  size_t p = body.find(pat);
  if (p == std::string::npos) return def;
  return std::atoll(body.c_str() + p + pat.size());
}

int RunConnect(const std::string& host, int port, const std::string& query,
               int64_t rows, const std::string& policy, int64_t queue_limit) {
  std::string target = "/query";
  char sep = '?';
  if (!policy.empty()) {
    target += sep + ("policy=" + policy);
    sep = '&';
  }
  if (queue_limit > 0) {
    target += sep + ("queue=" + std::to_string(queue_limit));
    sep = '&';
  }
  std::string req = "POST " + target + " HTTP/1.1\r\nHost: " + host +
                    "\r\nContent-Length: " + std::to_string(query.size()) +
                    "\r\nConnection: close\r\n\r\n" + query;
  std::string head, body;
  if (!RoundTrip(host, port, req, &head, &body)) {
    std::fprintf(stderr, "connect to %s:%d failed\n", host.c_str(), port);
    return 1;
  }
  if (head.find(" 200 ") == std::string::npos) {
    std::fprintf(stderr, "submit rejected: %s\n", body.c_str());
    return 1;
  }
  const std::string sid = JsonStr(body, "session");
  if (sid.empty()) {
    std::fprintf(stderr, "bad submit response: %s\n", body.c_str());
    return 1;
  }
  std::printf("session: %s\n", sid.c_str());
  std::printf("schema : %s\n", JsonStr(body, "schema").c_str());
  std::printf("plan   : %s\n", JsonStr(body, "plan").c_str());

  uint64_t cursor = 0;
  int64_t printed = 0;
  bool finished = false;
  while (!finished && (rows <= 0 || printed < rows)) {
    std::string t = "/session/" + sid +
                    "/results?cursor=" + std::to_string(cursor) +
                    "&wait_ms=2000";
    if (rows > 0) t += "&max=" + std::to_string(rows - printed);
    req = "GET " + t + " HTTP/1.1\r\nHost: " + host +
          "\r\nConnection: close\r\n\r\n";
    if (!RoundTrip(host, port, req, &head, &body)) {
      std::fprintf(stderr, "results poll failed (session %s, cursor %llu)\n",
                   sid.c_str(), static_cast<unsigned long long>(cursor));
      return 1;
    }
    std::string payload = sqp::server::DechunkBody(head, body);
    size_t pos = 0;
    while (pos < payload.size()) {
      size_t nl = payload.find('\n', pos);
      if (nl == std::string::npos) nl = payload.size();
      std::string line = payload.substr(pos, nl - pos);
      pos = nl + 1;
      if (line.empty()) continue;
      if (line.find("\"next_cursor\"") != std::string::npos) {
        cursor = static_cast<uint64_t>(
            JsonInt(line, "next_cursor", static_cast<int64_t>(cursor)));
        finished = line.find("\"finished\":true") != std::string::npos;
      } else {
        std::printf("%s\n", line.c_str());
        ++printed;
      }
    }
  }

  req = "DELETE /session/" + sid + " HTTP/1.1\r\nHost: " + host +
        "\r\nConnection: close\r\n\r\n";
  (void)RoundTrip(host, port, req, &head, &body);
  std::printf("rows printed: %lld%s\n", static_cast<long long>(printed),
              finished ? " (query finished)" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqp;

  int64_t tuples = 100000;
  int64_t show_rows = 10;
  bool parallel = false;
  bool columnar = false;
  int64_t trace_every = 0;
  int64_t http_port = -1;  // < 0 = no endpoint.
  int64_t linger_s = 0;
  bool adaptive_shed = false;
  double shed_target = 256.0;
  int64_t shards = 0;  // 0 = sharding off.
  int64_t serve_port = -1;     // < 0 = no query server.
  int64_t rate = 0;            // Tuples/s per stream (0 = full speed).
  int64_t punct_every = 0;     // Watermark every N tuples (0 = none).
  int64_t max_sessions = 0;    // 0 = server default.
  std::string connect_hostport;  // Client mode when non-empty.
  std::string client_policy;
  int64_t client_queue = 0;
  std::string durable_dir;       // Empty = durability off.
  int64_t checkpoint_every = 0;
  bool ignore_checkpoint = false;
  bool replay_mode = false;
  bool top_mode = false;
  bool explain_analyze = false;
  std::string explain_target;  // Empty = every query.
  bool events_mode = false;
  MetricsMode metrics_mode = MetricsMode::kOff;
  std::vector<std::string> query_texts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tuples") == 0 && i + 1 < argc) {
      tuples = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      show_rows = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--parallel") == 0) {
      parallel = true;
    } else if (std::strcmp(argv[i], "--columnar") == 0) {
      columnar = true;
    } else if (std::strcmp(argv[i], "--trace-every") == 0 && i + 1 < argc) {
      trace_every = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--http") == 0 && i + 1 < argc) {
      http_port = std::atoll(argv[++i]);
    } else if (std::strncmp(argv[i], "--http=", 7) == 0) {
      http_port = std::atoll(argv[i] + 7);
    } else if (std::strcmp(argv[i], "--linger") == 0 && i + 1 < argc) {
      linger_s = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--adaptive-shed") == 0) {
      adaptive_shed = true;
    } else if (std::strcmp(argv[i], "--shed-target") == 0 && i + 1 < argc) {
      shed_target = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
      serve_port = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      rate = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--punct") == 0 && i + 1 < argc) {
      punct_every = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-sessions") == 0 && i + 1 < argc) {
      max_sessions = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect_hostport = argv[++i];
    } else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      client_policy = argv[++i];
    } else if (std::strcmp(argv[i], "--queue") == 0 && i + 1 < argc) {
      client_queue = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--durable") == 0 && i + 1 < argc) {
      durable_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint-every") == 0 &&
               i + 1 < argc) {
      checkpoint_every = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--ignore-checkpoint") == 0) {
      ignore_checkpoint = true;
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      replay_mode = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
      return 0;
    } else if (std::strcmp(argv[i], "\\metrics") == 0) {
      metrics_mode = MetricsMode::kPretty;
    } else if (std::strcmp(argv[i], "\\metrics=json") == 0) {
      metrics_mode = MetricsMode::kJson;
    } else if (std::strcmp(argv[i], "\\metrics=prom") == 0) {
      metrics_mode = MetricsMode::kProm;
    } else if (std::strcmp(argv[i], "\\top") == 0) {
      top_mode = true;
    } else if (std::strncmp(argv[i], "\\explain", 8) == 0) {
      // \explain analyze [qN] — "analyze" and the label work both inside
      // one quoted argument ('\explain analyze q0') and as separate ones.
      explain_analyze = true;
      std::string words = argv[i] + 8;
      while (i + 1 < argc && (std::strcmp(argv[i + 1], "analyze") == 0 ||
                              IsQueryLabel(argv[i + 1]))) {
        words += " ";
        words += argv[++i];
      }
      size_t pos = 0;
      while (pos < words.size()) {
        size_t sp = words.find(' ', pos);
        if (sp == std::string::npos) sp = words.size();
        std::string word = words.substr(pos, sp - pos);
        pos = sp + 1;
        if (word.empty() || word == "analyze") continue;
        if (IsQueryLabel(word.c_str())) {
          explain_target = word;
        } else {
          std::fprintf(stderr, "\\explain: want [analyze] [qN], got %s\n",
                       word.c_str());
          return 2;
        }
      }
    } else if (std::strcmp(argv[i], "\\events") == 0) {
      events_mode = true;
    } else if (argv[i][0] == '\\') {
      std::fprintf(stderr, "unknown command: %s\n", argv[i]);
      Usage();
      return 2;
    } else {
      query_texts.emplace_back(argv[i]);
    }
  }
  if (!connect_hostport.empty()) {
    size_t colon = connect_hostport.rfind(':');
    if (colon == std::string::npos || query_texts.size() != 1) {
      std::fprintf(stderr,
                   "--connect wants HOST:PORT and exactly one query\n");
      return 2;
    }
    return RunConnect(connect_hostport.substr(0, colon),
                      std::atoi(connect_hostport.c_str() + colon + 1),
                      query_texts[0], show_rows, client_policy, client_queue);
  }
  if (query_texts.empty() && serve_port < 0) {
    Usage();
    return 2;
  }
  if (adaptive_shed && !parallel) {
    std::fprintf(stderr, "--adaptive-shed requires --parallel (the\n"
                         "controller watches the executor queues)\n");
    return 2;
  }
  if (columnar && !parallel) {
    std::fprintf(stderr, "--columnar requires --parallel (serial ingest\n"
                         "is element-at-a-time; only stage workers batch\n"
                         "tuples into columns)\n");
    return 2;
  }
  if ((replay_mode || ignore_checkpoint || checkpoint_every > 0) &&
      durable_dir.empty()) {
    std::fprintf(stderr, "--replay/--ignore-checkpoint/--checkpoint-every "
                         "require --durable DIR\n");
    return 2;
  }

  StreamEngine engine;
  if (trace_every > 0) {
    engine.EnableTracing(static_cast<uint64_t>(trace_every));
  }
  std::vector<FieldDomain> pkt_domains(gen::PacketSchema()->num_fields());
  pkt_domains[gen::PacketCols::kProtocol] = {"protocol", true, 256};
  pkt_domains[gen::PacketCols::kIsSyn] = {"is_syn", true, 2};
  pkt_domains[gen::PacketCols::kIsAck] = {"is_ack", true, 2};
  (void)engine.RegisterStream("packets", gen::PacketSchema(), pkt_domains);
  (void)engine.RegisterStream("cdr", gen::CdrSchema());
  (void)engine.RegisterStream("sensors", gen::SensorSchema());

  // The continuous monitor backs \top, /series.json, and the adaptive
  // shedding loop; start it whenever any of those is requested.
  if (top_mode || http_port >= 0 || adaptive_shed || serve_port >= 0) {
    obs::MonitorOptions mopt;
    mopt.period_ms = 50;
    engine.StartMonitor(mopt);
  }
  if (http_port >= 0) {
    auto bound = engine.ServeMetrics(static_cast<int>(http_port));
    if (!bound.ok()) {
      std::fprintf(stderr, "--http failed: %s\n",
                   bound.status().ToString().c_str());
      return 1;
    }
    std::printf("serving http://localhost:%d/metrics (also /snapshot.json, "
                "/series.json, /events.json, /profile/<q>.json)\n\n", *bound);
  }
  if (serve_port >= 0) {
    server::QueryServerOptions sopt;
    if (max_sessions > 0) {
      sopt.admission.max_sessions = static_cast<size_t>(max_sessions);
    }
    auto bound = engine.Serve(static_cast<int>(serve_port), sopt);
    if (!bound.ok()) {
      std::fprintf(stderr, "--serve failed: %s\n",
                   bound.status().ToString().c_str());
      return 1;
    }
    std::printf("query server on http://localhost:%d "
                "(POST /query, GET /session/<id>/results)\n\n", *bound);
    std::fflush(stdout);
  }

  std::vector<QueryHandle*> handles;
  for (const std::string& text : query_texts) {
    auto q = engine.Submit(text);
    if (!q.ok()) {
      std::fprintf(stderr, "error compiling \"%s\":\n  %s\n", text.c_str(),
                   q.status().ToString().c_str());
      return 1;
    }
    std::printf("query : %s\n", text.c_str());
    std::printf("label : %s\n", (*q)->metrics_label().c_str());
    std::printf("plan  : %s\n", (*q)->plan_desc().c_str());
    std::printf("output: %s\n", (*q)->output_schema().ToString().c_str());
    std::printf("memory: %s (%s)\n",
                (*q)->memory().verdict == MemoryVerdict::kBounded
                    ? "BOUNDED"
                    : "UNBOUNDED",
                (*q)->memory().explanation.c_str());
    if (columnar) {
      // Before EnableSharding/EnableParallel: both capture the flag
      // when they build their replicas/stages.
      Status st = engine.EnableColumnar(*q);
      std::printf("vec   : %s\n",
                  st.ok() ? "columnar" : st.ToString().c_str());
    }
    if (shards > 1) {
      // Before EnableParallel: the rewrite moves plan edges the
      // executor's stages would otherwise capture.
      ShardPlanOptions shopt;
      shopt.shards = static_cast<int>(shards);
      Status st = engine.EnableSharding(*q, shopt);
      if (!st.ok()) {
        std::printf("shard : off (%s)\n", st.ToString().c_str());
      } else if (!(*q)->sharded()) {
        std::printf("shard : off (no shardable stateful operator)\n");
      } else {
        for (const ShardRewrite& rw : (*q)->shard_rewrites()) {
          if (rw.sharded != nullptr) {
            std::printf("shard : %s x%d (%s routing)\n",
                        rw.original->name().c_str(), rw.sharded->shards(),
                        ShardRoutingName(rw.routing));
          } else {
            std::printf("shard : %s kept serial (%s)\n",
                        rw.original->name().c_str(), rw.reason.c_str());
          }
        }
      }
    }
    if (parallel) {
      Status st = engine.EnableParallel(*q);
      if (st.ok()) {
        std::printf("exec  : parallel (one worker per stage)\n");
        if (adaptive_shed) {
          AdaptiveShedOptions sopt;
          sopt.controller.target_queue = shed_target;
          Status shed = engine.EnableAdaptiveShedding(*q, sopt);
          if (shed.ok()) {
            std::printf("shed  : adaptive (target backlog %.0f)\n",
                        shed_target);
          } else {
            std::printf("shed  : off (%s)\n", shed.ToString().c_str());
          }
        }
      } else {
        std::printf("exec  : serial (%s)\n", st.ToString().c_str());
      }
    }
    std::printf("\n");
    handles.push_back(*q);
  }

  // After Submit (recovery restores checkpointed state into the standing
  // queries, matched by query text) and before the first Ingest.
  if (!durable_dir.empty()) {
    dur::DurabilityOptions dopt;
    dopt.checkpoint_every = static_cast<uint64_t>(
        checkpoint_every > 0 ? checkpoint_every : 0);
    dopt.use_checkpoint = !ignore_checkpoint;
    Status st = engine.EnableDurability(durable_dir, dopt);
    if (!st.ok()) {
      std::fprintf(stderr, "--durable failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("durable: %s (%s)\n\n", durable_dir.c_str(),
                engine.recovery_report().ToString().c_str());
    std::fflush(stdout);
  }
  if (replay_mode) {
    // Replay mode runs the queries purely over the archived past: the
    // recovery pass above already poured the archive through them, so
    // skip live generation and go straight to the flush.
    tuples = 0;
  }

  gen::PacketGenerator packets(gen::PacketOptions{});
  gen::CdrGenerator cdrs(gen::CdrOptions{});
  gen::SensorGenerator sensors(gen::SensorOptions{});
  // A mid-run snapshot shows the queries while data is still in flight
  // (for --parallel the workers are live and queue depths are real).
  const int64_t midpoint = tuples / 2;
  // \top refreshes the dashboard a few times over the run.
  const int64_t top_every = top_mode && tuples >= 5 ? tuples / 5 : 0;
  const auto ingest_start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < tuples; ++i) {
    TupleRef packet = packets.Next();
    const int64_t packet_ts = packet->ts();
    (void)engine.Ingest("packets", std::move(packet));
    TupleRef cdr = cdrs.Next();
    const int64_t cdr_ts = cdr->ts();
    (void)engine.Ingest("cdr", std::move(cdr));
    TupleRef sensor = sensors.Next();
    const int64_t sensor_ts = sensor->ts();
    (void)engine.Ingest("sensors", std::move(sensor));
    if (punct_every > 0 && (i + 1) % punct_every == 0) {
      // Event-time watermarks let windows close and give the profiler
      // (\explain analyze, \top) a real per-operator lag to report.
      (void)engine.IngestElement("packets",
                                 Element(Punctuation::Watermark(packet_ts)));
      (void)engine.IngestElement("cdr",
                                 Element(Punctuation::Watermark(cdr_ts)));
      (void)engine.IngestElement("sensors",
                                 Element(Punctuation::Watermark(sensor_ts)));
    }
    if (rate > 0 && (i & 255) == 0) {
      // Pace to `rate` tuples/s per stream so server clients see a
      // steady feed instead of one burst.
      auto due = ingest_start + std::chrono::nanoseconds(
                                    i * int64_t{1000000000} / rate);
      std::this_thread::sleep_until(due);
    }
    if (i == midpoint && metrics_mode == MetricsMode::kPretty) {
      PrintMetrics(engine, metrics_mode, "mid-run, live");
    }
    if (i == midpoint && explain_analyze) {
      PrintProfiles(engine, handles, explain_target, "mid-run, live");
    }
    if (top_every > 0 && i > 0 && i % top_every == 0) {
      // Force a sample so the dashboard is fresh even when the run is
      // shorter than the background sampling period.
      engine.monitor()->TickOnce();
      std::printf("\n--- top (tuple %lld/%lld) ---\n%s",
                  static_cast<long long>(i), static_cast<long long>(tuples),
                  engine.monitor()->TopString().c_str());
    }
  }
  engine.FinishAll();
  if (engine.query_server() != nullptr) {
    // Streaming clients drain the queued rows and then see a finished
    // trailer instead of long-polling an ended run.
    engine.query_server()->FinishSessions();
  }

  for (QueryHandle* q : handles) {
    std::printf("== %s\n", q->text().c_str());
    std::printf("rows: %zu\n", q->result_count());
    if (q->adaptive_shedding()) {
      std::printf("shed: %llu dropped, final drop rate %.4f\n",
                  static_cast<unsigned long long>(q->shed_dropped()),
                  q->shed_drop_rate());
    }
    int64_t shown = 0;
    for (const TupleRef& row : q->results()) {
      if (shown++ >= show_rows) {
        std::printf("  ... (%zu more)\n",
                    q->result_count() - static_cast<size_t>(show_rows));
        break;
      }
      std::printf("  %s\n", row->ToString().c_str());
    }
    std::printf("\n");
  }
  PrintMetrics(engine, metrics_mode, "final");
  if (explain_analyze) {
    PrintProfiles(engine, handles, explain_target, "final");
  }
  if (events_mode) PrintEvents(engine);
  if (top_mode) {
    engine.monitor()->TickOnce();
    std::printf("\n--- top (final) ---\n%s",
                engine.monitor()->TopString().c_str());
  }
  if (linger_s > 0) {
    std::printf("lingering %llds (scrape away)...\n",
                static_cast<long long>(linger_s));
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(linger_s));
  }
  return 0;
}
