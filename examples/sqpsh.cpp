// sqpsh — run continuous queries from the command line against the
// built-in synthetic streams.
//
//   sqpsh [--tuples N] [--rows K] [--parallel] [--trace-every N]
//         <query|command> [<query|command> ...]
//
// Registered streams: packets (IPv4/TCP tap), cdr (call records),
// sensors (measurements). Every query sees the same interleaved feed.
//
// Commands (backslash-prefixed, mixed freely with queries):
//   \metrics        pretty-print the live metrics snapshot (mid-run and
//                   after the run): per-operator tuples in/out,
//                   selectivity, busy time, queue depth, stage stats.
//   \metrics=json   same snapshot as one JSON object
//   \metrics=prom   same snapshot in Prometheus text exposition format
//
//   ./build/examples/sqpsh --tuples 50000 '\metrics' \
//     "select tb, src_ip, sum(len) from packets where protocol = 6 \
//      group by ts/60 as tb, src_ip having count(*) > 5"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "arch/engine.h"
#include "stream/generators.h"

namespace {

enum class MetricsMode { kOff, kPretty, kJson, kProm };

void Usage() {
  std::fprintf(
      stderr,
      "usage: sqpsh [--tuples N] [--rows K] [--parallel] [--trace-every N]\n"
      "             <query|\\metrics[=json|prom]> [...]\n"
      "streams: packets, cdr, sensors\n");
}

void PrintMetrics(const sqp::StreamEngine& engine, MetricsMode mode,
                  const char* when) {
  sqp::obs::Snapshot snap = engine.Metrics().TakeSnapshot();
  switch (mode) {
    case MetricsMode::kOff:
      return;
    case MetricsMode::kPretty:
      std::printf("\n--- metrics (%s) ---\n%s", when, snap.Pretty().c_str());
      break;
    case MetricsMode::kJson:
      std::printf("%s\n", snap.ToJson().c_str());
      break;
    case MetricsMode::kProm:
      std::printf("%s", snap.ToPrometheus().c_str());
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqp;

  int64_t tuples = 100000;
  int64_t show_rows = 10;
  bool parallel = false;
  int64_t trace_every = 0;
  MetricsMode metrics_mode = MetricsMode::kOff;
  std::vector<std::string> query_texts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tuples") == 0 && i + 1 < argc) {
      tuples = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      show_rows = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--parallel") == 0) {
      parallel = true;
    } else if (std::strcmp(argv[i], "--trace-every") == 0 && i + 1 < argc) {
      trace_every = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
      return 0;
    } else if (std::strcmp(argv[i], "\\metrics") == 0) {
      metrics_mode = MetricsMode::kPretty;
    } else if (std::strcmp(argv[i], "\\metrics=json") == 0) {
      metrics_mode = MetricsMode::kJson;
    } else if (std::strcmp(argv[i], "\\metrics=prom") == 0) {
      metrics_mode = MetricsMode::kProm;
    } else if (argv[i][0] == '\\') {
      std::fprintf(stderr, "unknown command: %s\n", argv[i]);
      Usage();
      return 2;
    } else {
      query_texts.emplace_back(argv[i]);
    }
  }
  if (query_texts.empty()) {
    Usage();
    return 2;
  }

  StreamEngine engine;
  if (trace_every > 0) {
    engine.EnableTracing(static_cast<uint64_t>(trace_every));
  }
  std::vector<FieldDomain> pkt_domains(gen::PacketSchema()->num_fields());
  pkt_domains[gen::PacketCols::kProtocol] = {"protocol", true, 256};
  pkt_domains[gen::PacketCols::kIsSyn] = {"is_syn", true, 2};
  pkt_domains[gen::PacketCols::kIsAck] = {"is_ack", true, 2};
  (void)engine.RegisterStream("packets", gen::PacketSchema(), pkt_domains);
  (void)engine.RegisterStream("cdr", gen::CdrSchema());
  (void)engine.RegisterStream("sensors", gen::SensorSchema());

  std::vector<QueryHandle*> handles;
  for (const std::string& text : query_texts) {
    auto q = engine.Submit(text);
    if (!q.ok()) {
      std::fprintf(stderr, "error compiling \"%s\":\n  %s\n", text.c_str(),
                   q.status().ToString().c_str());
      return 1;
    }
    std::printf("query : %s\n", text.c_str());
    std::printf("label : %s\n", (*q)->metrics_label().c_str());
    std::printf("plan  : %s\n", (*q)->plan_desc().c_str());
    std::printf("output: %s\n", (*q)->output_schema().ToString().c_str());
    std::printf("memory: %s (%s)\n",
                (*q)->memory().verdict == MemoryVerdict::kBounded
                    ? "BOUNDED"
                    : "UNBOUNDED",
                (*q)->memory().explanation.c_str());
    if (parallel) {
      Status st = engine.EnableParallel(*q);
      if (st.ok()) {
        std::printf("exec  : parallel (one worker per stage)\n");
      } else {
        std::printf("exec  : serial (%s)\n", st.ToString().c_str());
      }
    }
    std::printf("\n");
    handles.push_back(*q);
  }

  gen::PacketGenerator packets(gen::PacketOptions{});
  gen::CdrGenerator cdrs(gen::CdrOptions{});
  gen::SensorGenerator sensors(gen::SensorOptions{});
  // A mid-run snapshot shows the queries while data is still in flight
  // (for --parallel the workers are live and queue depths are real).
  const int64_t midpoint = tuples / 2;
  for (int64_t i = 0; i < tuples; ++i) {
    (void)engine.Ingest("packets", packets.Next());
    (void)engine.Ingest("cdr", cdrs.Next());
    (void)engine.Ingest("sensors", sensors.Next());
    if (i == midpoint && metrics_mode == MetricsMode::kPretty) {
      PrintMetrics(engine, metrics_mode, "mid-run, live");
    }
  }
  engine.FinishAll();

  for (QueryHandle* q : handles) {
    std::printf("== %s\n", q->text().c_str());
    std::printf("rows: %zu\n", q->result_count());
    int64_t shown = 0;
    for (const TupleRef& row : q->results()) {
      if (shown++ >= show_rows) {
        std::printf("  ... (%zu more)\n",
                    q->result_count() - static_cast<size_t>(show_rows));
        break;
      }
      std::printf("  %s\n", row->ToString().c_str());
    }
    std::printf("\n");
  }
  PrintMetrics(engine, metrics_mode, "final");
  return 0;
}
