// sqpsh — run continuous queries from the command line against the
// built-in synthetic streams.
//
//   sqpsh [--tuples N] [--rows K] [--parallel] [--shards N]
//         [--trace-every N] [--http PORT] [--linger SECS]
//         [--adaptive-shed] [--shed-target N]
//         <query|command> [<query|command> ...]
//
// Registered streams: packets (IPv4/TCP tap), cdr (call records),
// sensors (measurements). Every query sees the same interleaved feed.
//
// Commands (backslash-prefixed, mixed freely with queries):
//   \metrics        pretty-print the live metrics snapshot (mid-run and
//                   after the run): per-operator tuples in/out,
//                   selectivity, busy time, queue depth, stage stats.
//   \metrics=json   same snapshot as one JSON object
//   \metrics=prom   same snapshot in Prometheus text exposition format
//   \top            live refreshing dashboard from the continuous
//                   monitor: stream rates, per-operator throughput and
//                   selectivity, backlog, latency p50/p99, drop rates
//
//   ./build/examples/sqpsh --tuples 50000 '\metrics'
//     "select tb, src_ip, sum(len) from packets where protocol = 6
//      group by ts/60 as tb, src_ip having count(*) > 5"
//
//   # Scrapeable run: serve /metrics while ingesting, keep serving 30s.
//   ./build/examples/sqpsh --http 9464 --linger 30 --parallel
//     --adaptive-shed '\top' "select ts from packets where len > 256"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "arch/engine.h"
#include "stream/generators.h"

namespace {

enum class MetricsMode { kOff, kPretty, kJson, kProm };

void Usage() {
  std::fprintf(
      stderr,
      "usage: sqpsh [options] <query|command> [<query|command> ...]\n"
      "options:\n"
      "  --tuples N        tuples to generate per stream (default 100000)\n"
      "  --rows K          result rows to print per query (default 10)\n"
      "  --parallel        run each query on the threaded executor\n"
      "  --shards N        key-partition each query's stateful operators\n"
      "                    (joins, keyed group-bys) across N replica\n"
      "                    threads behind a hash exchange\n"
      "  --trace-every N   sample every Nth tuple's lineage (default off)\n"
      "  --http PORT       serve GET /metrics (Prometheus), /snapshot.json,\n"
      "                    /series.json while running (0 = ephemeral port)\n"
      "  --linger SECS     keep the process (and --http endpoint) alive\n"
      "                    SECS seconds after the run finishes\n"
      "  --adaptive-shed   attach monitor-driven load shedding to each\n"
      "                    parallel query (requires --parallel)\n"
      "  --shed-target N   backlog the shedding controller holds\n"
      "                    (default 256 elements)\n"
      "  --help            this message\n"
      "commands:\n"
      "  \\metrics[=json|prom]  metrics snapshot mid-run and after the run\n"
      "  \\top                  live monitor dashboard (rates, selectivity,\n"
      "                        backlog, latency, drop rates)\n"
      "streams: packets, cdr, sensors\n");
}

void PrintMetrics(const sqp::StreamEngine& engine, MetricsMode mode,
                  const char* when) {
  sqp::obs::Snapshot snap = engine.Metrics().TakeSnapshot();
  switch (mode) {
    case MetricsMode::kOff:
      return;
    case MetricsMode::kPretty:
      std::printf("\n--- metrics (%s) ---\n%s", when, snap.Pretty().c_str());
      break;
    case MetricsMode::kJson:
      std::printf("%s\n", snap.ToJson().c_str());
      break;
    case MetricsMode::kProm:
      std::printf("%s", snap.ToPrometheus().c_str());
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqp;

  int64_t tuples = 100000;
  int64_t show_rows = 10;
  bool parallel = false;
  int64_t trace_every = 0;
  int64_t http_port = -1;  // < 0 = no endpoint.
  int64_t linger_s = 0;
  bool adaptive_shed = false;
  double shed_target = 256.0;
  int64_t shards = 0;  // 0 = sharding off.
  bool top_mode = false;
  MetricsMode metrics_mode = MetricsMode::kOff;
  std::vector<std::string> query_texts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tuples") == 0 && i + 1 < argc) {
      tuples = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      show_rows = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--parallel") == 0) {
      parallel = true;
    } else if (std::strcmp(argv[i], "--trace-every") == 0 && i + 1 < argc) {
      trace_every = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--http") == 0 && i + 1 < argc) {
      http_port = std::atoll(argv[++i]);
    } else if (std::strncmp(argv[i], "--http=", 7) == 0) {
      http_port = std::atoll(argv[i] + 7);
    } else if (std::strcmp(argv[i], "--linger") == 0 && i + 1 < argc) {
      linger_s = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--adaptive-shed") == 0) {
      adaptive_shed = true;
    } else if (std::strcmp(argv[i], "--shed-target") == 0 && i + 1 < argc) {
      shed_target = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
      return 0;
    } else if (std::strcmp(argv[i], "\\metrics") == 0) {
      metrics_mode = MetricsMode::kPretty;
    } else if (std::strcmp(argv[i], "\\metrics=json") == 0) {
      metrics_mode = MetricsMode::kJson;
    } else if (std::strcmp(argv[i], "\\metrics=prom") == 0) {
      metrics_mode = MetricsMode::kProm;
    } else if (std::strcmp(argv[i], "\\top") == 0) {
      top_mode = true;
    } else if (argv[i][0] == '\\') {
      std::fprintf(stderr, "unknown command: %s\n", argv[i]);
      Usage();
      return 2;
    } else {
      query_texts.emplace_back(argv[i]);
    }
  }
  if (query_texts.empty()) {
    Usage();
    return 2;
  }
  if (adaptive_shed && !parallel) {
    std::fprintf(stderr, "--adaptive-shed requires --parallel (the\n"
                         "controller watches the executor queues)\n");
    return 2;
  }

  StreamEngine engine;
  if (trace_every > 0) {
    engine.EnableTracing(static_cast<uint64_t>(trace_every));
  }
  std::vector<FieldDomain> pkt_domains(gen::PacketSchema()->num_fields());
  pkt_domains[gen::PacketCols::kProtocol] = {"protocol", true, 256};
  pkt_domains[gen::PacketCols::kIsSyn] = {"is_syn", true, 2};
  pkt_domains[gen::PacketCols::kIsAck] = {"is_ack", true, 2};
  (void)engine.RegisterStream("packets", gen::PacketSchema(), pkt_domains);
  (void)engine.RegisterStream("cdr", gen::CdrSchema());
  (void)engine.RegisterStream("sensors", gen::SensorSchema());

  // The continuous monitor backs \top, /series.json, and the adaptive
  // shedding loop; start it whenever any of those is requested.
  if (top_mode || http_port >= 0 || adaptive_shed) {
    obs::MonitorOptions mopt;
    mopt.period_ms = 50;
    engine.StartMonitor(mopt);
  }
  if (http_port >= 0) {
    auto bound = engine.ServeMetrics(static_cast<int>(http_port));
    if (!bound.ok()) {
      std::fprintf(stderr, "--http failed: %s\n",
                   bound.status().ToString().c_str());
      return 1;
    }
    std::printf("serving http://localhost:%d/metrics (also /snapshot.json, "
                "/series.json)\n\n", *bound);
  }

  std::vector<QueryHandle*> handles;
  for (const std::string& text : query_texts) {
    auto q = engine.Submit(text);
    if (!q.ok()) {
      std::fprintf(stderr, "error compiling \"%s\":\n  %s\n", text.c_str(),
                   q.status().ToString().c_str());
      return 1;
    }
    std::printf("query : %s\n", text.c_str());
    std::printf("label : %s\n", (*q)->metrics_label().c_str());
    std::printf("plan  : %s\n", (*q)->plan_desc().c_str());
    std::printf("output: %s\n", (*q)->output_schema().ToString().c_str());
    std::printf("memory: %s (%s)\n",
                (*q)->memory().verdict == MemoryVerdict::kBounded
                    ? "BOUNDED"
                    : "UNBOUNDED",
                (*q)->memory().explanation.c_str());
    if (shards > 1) {
      // Before EnableParallel: the rewrite moves plan edges the
      // executor's stages would otherwise capture.
      ShardPlanOptions shopt;
      shopt.shards = static_cast<int>(shards);
      Status st = engine.EnableSharding(*q, shopt);
      if (!st.ok()) {
        std::printf("shard : off (%s)\n", st.ToString().c_str());
      } else if (!(*q)->sharded()) {
        std::printf("shard : off (no shardable stateful operator)\n");
      } else {
        for (const ShardRewrite& rw : (*q)->shard_rewrites()) {
          if (rw.sharded != nullptr) {
            std::printf("shard : %s x%d (%s routing)\n",
                        rw.original->name().c_str(), rw.sharded->shards(),
                        ShardRoutingName(rw.routing));
          } else {
            std::printf("shard : %s kept serial (%s)\n",
                        rw.original->name().c_str(), rw.reason.c_str());
          }
        }
      }
    }
    if (parallel) {
      Status st = engine.EnableParallel(*q);
      if (st.ok()) {
        std::printf("exec  : parallel (one worker per stage)\n");
        if (adaptive_shed) {
          AdaptiveShedOptions sopt;
          sopt.controller.target_queue = shed_target;
          Status shed = engine.EnableAdaptiveShedding(*q, sopt);
          if (shed.ok()) {
            std::printf("shed  : adaptive (target backlog %.0f)\n",
                        shed_target);
          } else {
            std::printf("shed  : off (%s)\n", shed.ToString().c_str());
          }
        }
      } else {
        std::printf("exec  : serial (%s)\n", st.ToString().c_str());
      }
    }
    std::printf("\n");
    handles.push_back(*q);
  }

  gen::PacketGenerator packets(gen::PacketOptions{});
  gen::CdrGenerator cdrs(gen::CdrOptions{});
  gen::SensorGenerator sensors(gen::SensorOptions{});
  // A mid-run snapshot shows the queries while data is still in flight
  // (for --parallel the workers are live and queue depths are real).
  const int64_t midpoint = tuples / 2;
  // \top refreshes the dashboard a few times over the run.
  const int64_t top_every = top_mode && tuples >= 5 ? tuples / 5 : 0;
  for (int64_t i = 0; i < tuples; ++i) {
    (void)engine.Ingest("packets", packets.Next());
    (void)engine.Ingest("cdr", cdrs.Next());
    (void)engine.Ingest("sensors", sensors.Next());
    if (i == midpoint && metrics_mode == MetricsMode::kPretty) {
      PrintMetrics(engine, metrics_mode, "mid-run, live");
    }
    if (top_every > 0 && i > 0 && i % top_every == 0) {
      // Force a sample so the dashboard is fresh even when the run is
      // shorter than the background sampling period.
      engine.monitor()->TickOnce();
      std::printf("\n--- top (tuple %lld/%lld) ---\n%s",
                  static_cast<long long>(i), static_cast<long long>(tuples),
                  engine.monitor()->TopString().c_str());
    }
  }
  engine.FinishAll();

  for (QueryHandle* q : handles) {
    std::printf("== %s\n", q->text().c_str());
    std::printf("rows: %zu\n", q->result_count());
    if (q->adaptive_shedding()) {
      std::printf("shed: %llu dropped, final drop rate %.4f\n",
                  static_cast<unsigned long long>(q->shed_dropped()),
                  q->shed_drop_rate());
    }
    int64_t shown = 0;
    for (const TupleRef& row : q->results()) {
      if (shown++ >= show_rows) {
        std::printf("  ... (%zu more)\n",
                    q->result_count() - static_cast<size_t>(show_rows));
        break;
      }
      std::printf("  %s\n", row->ToString().c_str());
    }
    std::printf("\n");
  }
  PrintMetrics(engine, metrics_mode, "final");
  if (top_mode) {
    engine.monitor()->TickOnce();
    std::printf("\n--- top (final) ---\n%s",
                engine.monitor()->TopString().c_str());
  }
  if (linger_s > 0) {
    std::printf("lingering %llds (scrape away)...\n",
                static_cast<long long>(linger_s));
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(linger_s));
  }
  return 0;
}
