// CQL front-end demo: parse, analyze, and run continuous queries from
// text, including the [ABB+02] bounded-memory analysis of slides 35-36.
// Each query is compiled against the packet-tap catalog, its plan and
// memory verdict are printed, then it runs over 100k synthetic packets.
//
//   ./build/examples/cql_demo

#include <cstdio>

#include "cql/planner.h"
#include "exec/plan.h"
#include "stream/generators.h"

namespace {

void RunQuery(const sqp::cql::Catalog& catalog, const char* text) {
  using namespace sqp;
  std::printf("----------------------------------------------------------\n");
  std::printf("query : %s\n", text);
  auto query = cql::Compile(text, catalog);
  if (!query.ok()) {
    std::printf("error : %s\n\n", query.status().ToString().c_str());
    return;
  }
  std::printf("plan  : %s\n", (*query)->plan_desc().c_str());
  std::printf("output: %s\n", (*query)->output_schema().ToString().c_str());
  const MemoryAnalysis& mem = (*query)->memory();
  std::printf("memory: %s (%s)\n",
              mem.verdict == MemoryVerdict::kBounded ? "BOUNDED" : "UNBOUNDED",
              mem.explanation.c_str());

  CollectorSink sink;
  (*query)->AttachSink(&sink);
  gen::PacketGenerator tap(gen::PacketOptions{});
  for (int i = 0; i < 100000; ++i) {
    (*query)->Push(Element(tap.Next()));
  }
  (*query)->Finish();
  std::printf("rows  : %zu", sink.count());
  for (size_t i = 0; i < std::min<size_t>(3, sink.count()); ++i) {
    std::printf("%s %s", i == 0 ? "   e.g." : ",",
                sink.tuples()[i]->ToString().c_str());
  }
  std::printf("\n\n");
}

}  // namespace

int main() {
  using namespace sqp;

  cql::Catalog catalog;
  std::vector<FieldDomain> domains(gen::PacketSchema()->num_fields());
  domains[gen::PacketCols::kProtocol] = {"protocol", true, 256};
  (void)catalog.Register("packets", gen::PacketSchema(), domains);

  // Selection + projection (slide 29).
  RunQuery(catalog,
           "select src_ip, ts from packets where len > 512");

  // The slide-13 grouped aggregate with HAVING.
  RunQuery(catalog,
           "select tb, src_ip, sum(len) from packets where protocol = 6 "
           "group by ts/60 as tb, src_ip having count(*) > 5");

  // Slide 36, unbounded: grouping on an unrestricted unbounded column.
  RunQuery(catalog,
           "select len, count(*) from packets where len > 512 group by len");

  // Slide 36, bounded: the range predicate caps the group domain.
  RunQuery(catalog,
           "select len, count(*) from packets "
           "where len > 512 and len < 1024 group by len");

  // Sliding-window aggregate over [range 1000].
  RunQuery(catalog,
           "select sum(len), count(*) from packets [range 1000]");

  // Duplicate-eliminating projection (like grouping, slide 29).
  RunQuery(catalog, "select distinct protocol from packets");

  // Payload inspection (the P2P query of slide 10).
  RunQuery(catalog,
           "select ts, src_ip from packets "
           "where contains(payload, 'GNUTELLA')");

  // A query the analyzer must reject: holistic aggregate over an
  // unbounded attribute, grouped on an unbounded attribute.
  RunQuery(catalog,
           "select src_ip, median(len) from packets group by src_ip");
  return 0;
}
