// Quickstart: build a small continuous-query plan by hand and run it.
//
// Pipeline (the shape of slide 13's first GSQL query):
//   sensor stream -> select (temperature > threshold)
//                 -> per-minute group-by (count, avg temperature)
//                 -> print
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "exec/aggregate_op.h"
#include "exec/plan.h"
#include "exec/select.h"
#include "stream/generators.h"

int main() {
  using namespace sqp;

  // 1. A synthetic measurement stream (slide 3: sensor networks).
  gen::SensorOptions options;
  options.num_sensors = 50;
  options.walk_step = 0.5;
  gen::SensorGenerator sensors(options);
  std::printf("input schema: %s\n\n", gen::SensorSchema()->ToString().c_str());

  // 2. Operators. The Plan owns them; SetOutput wires the dataflow.
  Plan plan;

  // WHERE temperature > 21.
  auto* hot = plan.Make<SelectOp>(
      Gt(Col(gen::SensorCols::kTemperature), Lit(21.0)), "hot-readings");

  // GROUP BY time/60 (a shifting window), computing count(*) and
  // avg(temperature). Output rows: [bucket_start, count, avg].
  GroupByOptions agg;
  agg.aggs = {{AggKind::kCount, -1, 0.5},
              {AggKind::kAvg, gen::SensorCols::kTemperature, 0.5}};
  agg.window_size = 60;
  auto* per_minute = plan.Make<GroupByAggregateOp>(agg, "per-minute");

  // Sink: print each result row as it streams out.
  auto* print = plan.Make<CallbackSink>([](const Element& e) {
    if (!e.is_tuple()) return;
    const Tuple& row = *e.tuple();
    std::printf("minute %5lld | hot readings: %4lld | avg temp: %.2f\n",
                static_cast<long long>(row.at(0).AsInt() / 60),
                static_cast<long long>(row.at(1).AsInt()),
                row.at(2).AsDouble());
  });

  Plan::Connect(hot, per_minute);
  Plan::Connect(per_minute, print);

  // 3. Drive the stream. Results for each minute emerge as soon as the
  // stream provably moves past it (the ordering attribute at work).
  for (int i = 0; i < 30000; ++i) {
    hot->Push(Element(sensors.Next()));
  }
  hot->Flush();  // End of stream: close the last bucket.

  std::printf("\noperator stats:\n%s", plan.StatsString().c_str());
  return 0;
}
