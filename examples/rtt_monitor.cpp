// Web client performance monitoring (slides 11 and 13): correlate TCP
// SYN and SYN-ACK packets with a windowed stream join to measure the
// round-trip time every real client experiences — no "active client"
// probes needed. This is the tutorial's "essential to correlate multiple
// data streams" lesson, expressed in CQL and executed end-to-end.
//
//   ./build/examples/rtt_monitor

#include <cstdio>
#include <map>

#include "cql/planner.h"
#include "exec/plan.h"
#include "stream/generators.h"

int main() {
  using namespace sqp;
  using gen::PacketCols;

  // Register the two logical streams (both carry the packet schema).
  cql::Catalog catalog;
  std::vector<FieldDomain> domains(gen::PacketSchema()->num_fields());
  domains[PacketCols::kIsSyn] = {"is_syn", true, 2};
  domains[PacketCols::kIsAck] = {"is_ack", true, 2};
  (void)catalog.Register("tcp_syn", gen::PacketSchema(), domains);
  (void)catalog.Register("tcp_syn_ack", gen::PacketSchema(), domains);

  // Slide 13's second GSQL query, almost verbatim.
  const char* kQuery =
      "select s.ts, s.src_ip, s.dst_ip, a.ts - s.ts as rtt "
      "from tcp_syn s [range 300], tcp_syn_ack a [range 300] "
      "where s.src_ip = a.dst_ip and s.dst_ip = a.src_ip "
      "and s.src_port = a.dst_port and s.dst_port = a.src_port";
  auto query = cql::Compile(kQuery, catalog);
  if (!query.ok()) {
    std::printf("compile error: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("query : %s\nplan  : %s\nmemory: %s\n\n", kQuery,
              (*query)->plan_desc().c_str(),
              (*query)->memory().explanation.c_str());

  // Collect per-time-bucket RTT statistics from the join output.
  std::map<int64_t, std::pair<double, int>> per_bucket;  // sum, count.
  CallbackSink sink([&](const Element& e) {
    if (!e.is_tuple()) return;
    const Tuple& row = *e.tuple();
    per_bucket[row.at(0).AsInt() / 5000].first += row.at(3).ToDouble();
    per_bucket[row.at(0).AsInt() / 5000].second += 1;
  });
  (*query)->AttachSink(&sink);

  // Demultiplex the tap into the two logical streams.
  gen::PacketOptions options;
  options.syn_prob = 0.08;
  options.p2p_fraction = 0.0;
  gen::PacketGenerator tap(options);
  uint64_t syns = 0, acks = 0;
  for (int i = 0; i < 400000; ++i) {
    TupleRef pkt = tap.Next();
    bool syn = pkt->at(PacketCols::kIsSyn).AsInt() == 1;
    bool ack = pkt->at(PacketCols::kIsAck).AsInt() == 1;
    if (syn && !ack) {
      ++syns;
      (*query)->Push(Element(pkt), 0);
    } else if (syn && ack) {
      ++acks;
      (*query)->Push(Element(pkt), 1);
    }
  }
  (*query)->Finish();

  std::printf("SYNs: %llu   SYN-ACKs: %llu\n\n",
              static_cast<unsigned long long>(syns),
              static_cast<unsigned long long>(acks));
  std::printf("%-12s %-10s %s\n", "time bucket", "samples", "mean rtt");
  for (const auto& [bucket, stats] : per_bucket) {
    std::printf("%-12lld %-10d %.1f ticks\n",
                static_cast<long long>(bucket), stats.second,
                stats.first / stats.second);
  }
  return 0;
}
