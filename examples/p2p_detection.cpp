// P2P traffic detection (slide 10): the tutorial's Gigascope case study.
//
// An ISP wants to measure P2P traffic. The NetFlow approach classifies
// by well-known port numbers; the Gigascope approach searches each TCP
// payload for protocol keywords. Because most P2P traffic hides on
// non-standard ports, the payload query finds ~3x more — the slide's
// headline number, reproduced here against ground truth from the
// generator.
//
//   ./build/examples/p2p_detection

#include <cstdio>

#include "exec/aggregate_op.h"
#include "exec/plan.h"
#include "exec/select.h"
#include "stream/generators.h"

int main() {
  using namespace sqp;
  using gen::PacketCols;

  gen::PacketOptions options;
  options.p2p_fraction = 0.30;
  options.p2p_on_known_port = 1.0 / 3.0;  // 2/3 of P2P hides its port.
  gen::PacketGenerator tap(options);

  Plan plan;

  // NetFlow-style: WHERE dst_port IN (kazaa, gnutella) -> sum(len).
  auto* by_port = plan.Make<SelectOp>(
      Or(Eq(Col(PacketCols::kDstPort), Lit(gen::kKazaaPort)),
         Eq(Col(PacketCols::kDstPort), Lit(gen::kGnutellaPort))),
      "port-filter");
  GroupByOptions agg;
  agg.aggs = {{AggKind::kCount, -1, 0.5}, {AggKind::kSum, PacketCols::kLen, 0.5}};
  auto* port_sum = plan.Make<GroupByAggregateOp>(agg, "port-sum");
  auto* port_sink = plan.Make<CollectorSink>();
  Plan::Connect(by_port, port_sum);
  Plan::Connect(port_sum, port_sink);

  // Gigascope-style: WHERE contains(payload, keyword) -> sum(len).
  ExprRef keyword_match =
      Or(Or(ContainsFn(Col(PacketCols::kPayload), Lit("X-Kazaa-")),
            ContainsFn(Col(PacketCols::kPayload), Lit("GNUTELLA"))),
         ContainsFn(Col(PacketCols::kPayload), Lit("BitTorrent")));
  auto* by_payload = plan.Make<SelectOp>(keyword_match, "payload-filter");
  auto* payload_sum = plan.Make<GroupByAggregateOp>(agg, "payload-sum");
  auto* payload_sink = plan.Make<CollectorSink>();
  Plan::Connect(by_payload, payload_sum);
  Plan::Connect(payload_sum, payload_sink);

  const int kPackets = 500000;
  for (int i = 0; i < kPackets; ++i) {
    TupleRef pkt = tap.Next();
    by_port->Push(Element(pkt));
    by_payload->Push(Element(pkt));
  }
  by_port->Flush();
  by_payload->Flush();

  auto row = [](const CollectorSink& sink) {
    // [ts, count, sum(len)] — single group (no keys).
    return std::make_pair(sink.tuples()[0]->at(1).AsInt(),
                          sink.tuples()[0]->at(2).AsInt());
  };
  auto [port_pkts, port_bytes] = row(*port_sink);
  auto [kw_pkts, kw_bytes] = row(*payload_sink);

  std::printf("packets observed:            %d\n", kPackets);
  std::printf("true P2P packets:            %llu\n",
              static_cast<unsigned long long>(tap.true_p2p_packets()));
  std::printf("\nNetFlow (port) heuristic:    %lld packets, %lld bytes\n",
              static_cast<long long>(port_pkts),
              static_cast<long long>(port_bytes));
  std::printf("Gigascope payload keywords:  %lld packets, %lld bytes\n",
              static_cast<long long>(kw_pkts),
              static_cast<long long>(kw_bytes));
  std::printf("\npayload/port ratio:          %.2fx   (slide 10: ~3x)\n",
              static_cast<double>(kw_pkts) / static_cast<double>(port_pkts));
  std::printf("payload recall vs truth:     %.1f%%\n",
              100.0 * static_cast<double>(kw_pkts) /
                  static_cast<double>(tap.true_p2p_packets()));
  return 0;
}
